"""Chrome trace-event export: schema, tracks, latency accounting."""

import json

import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.obs.export import (
    ChromeTraceBuilder,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import Tracer
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.engine import PipelineSimulator, PipelineStage
from repro.sim.serving import ServingSimulator
from repro.sim.streaming import generate_trace_soa
from repro.sim.trace import ExecutionTrace
from repro.workloads.gemm import GemmShape

SHAPES = (GemmShape(1024, 1024, 1024), GemmShape(512, 512, 512))


def serve(requests=200, faults=None, streaming=False):
    partition = AcceleratorPartition([config_by_name("C5"), config_by_name("C3")])
    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)
    trace = generate_trace_soa(SHAPES, requests, 0.5e-3, seed=3)
    return simulator.run(
        trace,
        streaming=streaming,
        faults=faults,
        fault_policy=FaultPolicy(max_retries=2) if faults is not None else None,
    )


class TestSpanExport:
    def test_spans_become_complete_events(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", track="serving", size=2):
            with tracer.span("inner"):
                pass
        trace = ChromeTraceBuilder().add_spans(tracer.spans()).build()
        validate_chrome_trace(trace)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        assert all(e["dur"] >= 0 for e in events)
        depths = {e["name"]: e["args"]["depth"] for e in events}
        assert depths == {"outer": 0, "inner": 1}

    def test_metadata_names_the_track(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", track="serving"):
            pass
        trace = ChromeTraceBuilder().add_spans(tracer.spans()).build()
        thread_names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_names == ["serving"]

    def test_non_json_attrs_are_stringified(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", shape=GemmShape(8, 8, 8)):
            pass
        trace = ChromeTraceBuilder().add_spans(tracer.spans()).build()
        json.dumps(trace)  # must be serializable
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert isinstance(event["args"]["shape"], str)


class TestServingExport:
    def test_schema_and_per_accelerator_tracks(self):
        report = serve()
        trace = ChromeTraceBuilder().add_serving_report(report).build()
        validate_chrome_trace(trace)
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {c.accelerator for c in report.completed}
        assert used <= thread_names  # one track per accelerator

    def test_wait_plus_execute_reproduces_latency_accounting(self):
        report = serve()
        trace = ChromeTraceBuilder().add_serving_report(report).build()
        wait_start, wait_us, exec_us = {}, 0.0, 0.0
        for event in trace["traceEvents"]:
            if event.get("cat") == "wait" and event["ph"] == "b":
                wait_start[event["id"]] = event["ts"]
            elif event.get("cat") == "wait" and event["ph"] == "e":
                wait_us += event["ts"] - wait_start[event["id"]]
            elif event.get("cat") == "execute":
                exec_us += event["dur"]
        total = sum(c.latency for c in report.completed)
        assert (wait_us + exec_us) / 1e6 == pytest.approx(total, rel=1e-9)

    def test_fault_run_emits_instants_and_windows(self):
        horizon = 200 * 0.5e-3
        faults = FaultSchedule.down(
            "C5", 0.1 * horizon, 0.6 * horizon
        ) + FaultSchedule.down("C3", 0.2 * horizon, 0.4 * horizon)
        report = serve(faults=faults)
        trace = ChromeTraceBuilder().add_serving_report(report).build()
        validate_chrome_trace(trace)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        windows = [
            e for e in trace["traceEvents"] if e.get("cat") == "fault-window"
        ]
        assert len(windows) == 2
        # the chaos loop produced kills/requeues/sheds -> instant markers
        expected = report.kills + report.requeues + len(report.shed)
        assert len(instants) == expected
        assert len(report.fault_timeline) == report.kills + report.requeues

    def test_streaming_report_degrades_to_utilization(self):
        report = serve(streaming=True)
        builder = ChromeTraceBuilder()
        with pytest.warns(UserWarning, match="utilization"):
            builder.add_serving_report(report)
        trace = builder.build()
        validate_chrome_trace(trace)
        slices = [
            e for e in trace["traceEvents"] if e.get("cat") == "utilization"
        ]
        assert {e["args"]["requests"] for e in slices} == set(
            report.accelerator_load().values()
        )
        # no per-request lifecycles survive the degrade
        assert not any(e.get("cat") in ("wait", "execute")
                       for e in trace["traceEvents"])

    def test_streaming_fault_run_keeps_fault_windows(self):
        horizon = 200 * 0.5e-3
        faults = FaultSchedule.down("C5", 0.1 * horizon, 0.6 * horizon)
        report = serve(streaming=True, faults=faults)
        builder = ChromeTraceBuilder()
        with pytest.warns(UserWarning, match="fault windows"):
            builder.add_serving_report(report)
        trace = builder.build()
        validate_chrome_trace(trace)
        windows = [
            e for e in trace["traceEvents"] if e.get("cat") == "fault-window"
        ]
        assert len(windows) == 1


class TestExecutionTraceExport:
    def test_one_track_per_stage(self):
        pipeline = PipelineSimulator(
            [
                PipelineStage("load", lambda t: 2.0, slots=2),
                PipelineStage("compute", lambda t: 3.0, slots=2),
            ]
        )
        trace = ExecutionTrace(pipeline.run(4))
        chrome = ChromeTraceBuilder().add_execution_trace(trace).build()
        validate_chrome_trace(chrome)
        thread_names = {
            e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {"load", "compute"}
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(trace.events)

    def test_accepts_raw_events_json(self):
        records = [
            {"stage": "load", "item": 0, "start": 0.0, "end": 2.0},
            {"stage": "compute", "item": 0, "start": 2.0, "end": 5.0},
        ]
        chrome = ChromeTraceBuilder().add_execution_trace(records).build()
        validate_chrome_trace(chrome)
        assert len([e for e in chrome["traceEvents"] if e["ph"] == "X"]) == 2


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "ts": 0}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="'dur'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": -1}]}
            )

    def test_rejects_nonmonotone_timestamps(self):
        events = [
            {"name": "a", "ph": "X", "ts": 5, "dur": 1},
            {"name": "b", "ph": "X", "ts": 2, "dur": 1},
        ]
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_unmatched_async_begin(self):
        events = [
            {"name": "w", "ph": "b", "ts": 0, "pid": 1, "cat": "wait", "id": "1"}
        ]
        with pytest.raises(ValueError, match="unmatched 'b'"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_end_without_begin(self):
        events = [{"name": "x", "ph": "E", "ts": 0, "pid": 1, "tid": 1}]
        with pytest.raises(ValueError, match="without a matching 'B'"):
            validate_chrome_trace({"traceEvents": events})

    def test_accepts_balanced_sync_pairs(self):
        events = [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]
        validate_chrome_trace({"traceEvents": events})


class TestWriteTrace:
    def test_write_and_reload(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", track="t"):
            pass
        trace = ChromeTraceBuilder().add_spans(tracer.spans()).build()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), trace)
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert loaded == trace
