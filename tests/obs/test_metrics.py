"""MetricsRegistry: instruments, labels, exposition formats."""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(ValueError):
            registry.counter("repro_test_total").inc(-1)

    def test_same_name_same_labels_is_same_instrument(self, registry):
        a = registry.counter("repro_test_total", engine="heap")
        b = registry.counter("repro_test_total", engine="heap")
        assert a is b

    def test_distinct_labels_are_distinct_children(self, registry):
        a = registry.counter("repro_test_total", engine="heap")
        b = registry.counter("repro_test_total", engine="table")
        a.inc(1)
        b.inc(2)
        assert a.value == 1 and b.value == 2


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_test_jobs")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_max_keeps_running_maximum(self, registry):
        gauge = registry.gauge("repro_test_jobs")
        gauge.max_(4)
        gauge.max_(2)
        assert gauge.value == 4


class TestHistogram:
    def test_count_sum_quantiles(self, registry):
        histogram = registry.histogram("repro_test_seconds")
        histogram.observe_many([float(i) for i in range(1, 101)])
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5050.0)
        # sketch guarantee: 1% relative error
        assert histogram.quantile(50) == pytest.approx(50.0, rel=0.02)
        assert histogram.quantile(99) == pytest.approx(99.0, rel=0.02)

    def test_quantile_sketch_backend(self, registry):
        from repro.sim.streaming import QuantileSketch

        histogram = registry.histogram("repro_test_seconds")
        assert isinstance(histogram.sketch, QuantileSketch)


class TestRegistry:
    def test_kind_mismatch_rejected(self, registry):
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total")

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad-name")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_test_total", **{"bad-label": "x"})

    def test_reset_all_and_by_prefix(self, registry):
        registry.counter("repro_eval_total").inc()
        registry.counter("repro_fault_total").inc()
        registry.reset("repro_eval_")
        assert registry.families() == ["repro_fault_total"]
        registry.reset()
        assert registry.families() == []

    def test_concurrent_instrument_creation(self, registry):
        instruments = []

        def worker():
            for index in range(50):
                counter = registry.counter("repro_test_total", i=str(index % 5))
                counter.inc()
                instruments.append(counter)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(
            child.value
            for child in {id(i): i for i in instruments}.values()
        )
        assert total == 8 * 50


class TestExposition:
    def test_prometheus_text_format(self, registry):
        registry.counter("repro_test_total", "things counted", kind="a").inc(3)
        registry.gauge("repro_test_jobs").set(2)
        registry.histogram("repro_test_seconds").observe_many([1.0, 2.0, 3.0])
        text = registry.to_prometheus()
        assert "# HELP repro_test_total things counted" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{kind="a"} 3' in text
        assert "# TYPE repro_test_jobs gauge" in text
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_seconds_sum 6" in text
        assert "repro_test_seconds_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("repro_test_seconds")
        histogram.observe_many([0.5, 1.0, 2.0, 4.0])
        text = registry.to_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_test_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4
        # bucket edges parse back as nondecreasing floats
        edges = [
            float(line.split('le="', 1)[1].split('"', 1)[0])
            for line in text.splitlines()
            if line.startswith("repro_test_seconds_bucket")
            and "+Inf" not in line
        ]
        assert edges == sorted(edges)

    def test_label_values_escaped(self, registry):
        registry.counter("repro_test_total", shape='1024x"quoted"').inc()
        text = registry.to_prometheus()
        assert '\\"quoted\\"' in text

    def test_snapshot_round_trips_through_json(self, registry):
        registry.counter("repro_test_total").inc(2)
        registry.histogram("repro_test_seconds").observe(1.5)
        snapshot = json.loads(registry.to_json())
        assert snapshot["repro_test_total"]["type"] == "counter"
        assert snapshot["repro_test_total"]["values"][0]["value"] == 2
        summary = snapshot["repro_test_seconds"]
        assert summary["values"][0]["count"] == 1
        assert summary["values"][0]["sum"] == pytest.approx(1.5)

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""
        assert registry.snapshot() == {}


class TestDumpMerge:
    """Cross-process state shipping: ``dump`` / ``merge_dump``."""

    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "things", kind="a").inc(3)
        registry.gauge("repro_test_jobs", "peak workers").set(4)
        registry.histogram("repro_test_seconds").observe_many([0.5, 1.0, 2.0])
        return registry

    def test_round_trip_into_empty_registry(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_dump(source.dump())
        assert target.snapshot() == source.snapshot()

    def test_dump_survives_pickling(self):
        import pickle

        source = self._populated()
        blob = pickle.dumps(source.dump(), protocol=pickle.HIGHEST_PROTOCOL)
        target = MetricsRegistry()
        target.merge_dump(pickle.loads(blob))
        assert target.snapshot() == source.snapshot()

    def test_counters_add_and_gauges_keep_max(self):
        left = MetricsRegistry()
        left.counter("repro_test_total").inc(2)
        left.gauge("repro_test_jobs").set(8)
        right = MetricsRegistry()
        right.counter("repro_test_total").inc(5)
        right.gauge("repro_test_jobs").set(3)
        left.merge_dump(right.dump())
        assert left.counter("repro_test_total").value == 7
        # peak semantics: the merged gauge is the fleet-wide maximum
        assert left.gauge("repro_test_jobs").value == 8

    def test_summary_merge_is_bucket_exact(self):
        shard_a = MetricsRegistry()
        shard_a.histogram("repro_test_seconds").observe_many([0.1, 0.2, 0.4])
        shard_b = MetricsRegistry()
        shard_b.histogram("repro_test_seconds").observe_many([0.8, 1.6])
        shard_a.merge_dump(shard_b.dump())
        union = MetricsRegistry()
        union.histogram("repro_test_seconds").observe_many(
            [0.1, 0.2, 0.4, 0.8, 1.6]
        )
        merged = shard_a.histogram("repro_test_seconds")
        reference = union.histogram("repro_test_seconds")
        assert merged.count == reference.count
        assert merged.quantiles([50, 99]) == reference.quantiles([50, 99])

    def test_merge_does_not_mutate_the_source_dump(self):
        source = self._populated()
        dump = source.dump()
        target = MetricsRegistry()
        target.merge_dump(dump)
        target.histogram("repro_test_seconds").observe(100.0)
        target.merge_dump(source.dump())  # unaffected by target's extra sample
        source.histogram("repro_test_seconds").observe(50.0)
        # the first dump's deep-copied sketch did not see the late sample
        fresh = MetricsRegistry()
        fresh.merge_dump(dump)
        assert fresh.histogram("repro_test_seconds").count == 3

    def test_labels_preserved_across_merge(self):
        source = MetricsRegistry()
        source.counter("repro_test_total", engine="heap").inc(2)
        source.counter("repro_test_total", engine="table").inc(3)
        target = MetricsRegistry()
        target.merge_dump(source.dump())
        assert target.counter("repro_test_total", engine="heap").value == 2
        assert target.counter("repro_test_total", engine="table").value == 3
