"""Tracer/span semantics: nesting, threads, the disabled fast path."""

import threading

import pytest

from repro.obs.spans import (
    GLOBAL_TRACER,
    Tracer,
    _NULL_SPAN,
    instant,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _global_tracer_off():
    yield
    GLOBAL_TRACER.disable()
    GLOBAL_TRACER.clear()


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_span_returns_shared_null_span(self):
        assert span("anything") is _NULL_SPAN
        assert span("other", track="t", k=1) is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("noop") as sp:
            assert sp.set(attr=1) is sp
        assert len(GLOBAL_TRACER) == 0

    def test_instant_noop_when_disabled(self):
        instant("marker", value=1)
        assert len(GLOBAL_TRACER) == 0


class TestRecording:
    def test_span_records_interval(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", track="main", size=3) as sp:
            pass
        (recorded,) = tracer.spans()
        assert recorded is sp
        assert recorded.name == "work"
        assert recorded.track == "main"
        assert recorded.attrs == {"size": 3}
        assert 0.0 <= recorded.start <= recorded.end
        assert recorded.duration >= 0.0

    def test_timestamps_relative_to_enable_epoch(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("early"):
            pass
        tracer.enable(clear=True)  # re-anchors the epoch
        with tracer.span("late"):
            pass
        (recorded,) = tracer.spans()
        assert recorded.name == "late"
        assert recorded.start < 0.5  # near the fresh epoch, not the old one

    def test_nested_spans_track_inheritance_and_depth(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", track="serving"):
            with tracer.span("inner") as inner:
                assert inner.track == "serving"
                assert inner.depth == 1
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]  # completion order

    def test_default_track_is_thread_name(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work") as sp:
            pass
        assert sp.track == threading.current_thread().name

    def test_set_merges_attributes(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", a=1) as sp:
            sp.set(b=2)
        assert sp.attrs == {"a": 1, "b": 2}

    def test_disable_mid_span_drops_the_record(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("doomed"):
            tracer.disable()
        assert len(tracer) == 0

    def test_instant_records_zero_duration(self):
        tracer = Tracer()
        tracer.enable()
        tracer.instant("marker", track="t", kind="kill")
        (marker,) = tracer.spans()
        assert marker.start == marker.end
        assert marker.attrs == {"kind": "kill"}

    def test_max_spans_drops_overflow(self):
        tracer = Tracer(max_spans=2)
        tracer.enable()
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        tracer.enable()
        errors = []

        def worker(tag):
            try:
                with tracer.span("outer-" + tag):
                    with tracer.span("inner") as inner:
                        assert inner.track == "outer-track-" + tag or True
                        assert inner.depth == 1
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(str(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tracer) == 8
        # every inner span sits at depth 1: stacks never interleaved
        assert all(
            s.depth == 1 for s in tracer.spans() if s.name == "inner"
        )

    def test_rejects_nonpositive_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestModuleLevelApi:
    def test_module_span_records_on_global_tracer(self):
        GLOBAL_TRACER.enable(clear=True)
        with span("work", track="t"):
            pass
        assert [s.name for s in GLOBAL_TRACER.spans()] == ["work"]

    def test_module_instant_records_on_global_tracer(self):
        GLOBAL_TRACER.enable(clear=True)
        instant("marker")
        assert len(GLOBAL_TRACER) == 1
