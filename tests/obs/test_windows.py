"""Windowed telemetry series: index math, folds, merges, eviction."""

import numpy as np
import pytest

from repro.obs.windows import (
    DEFAULT_WINDOW_CAPACITY,
    ServingMonitor,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)


class TestWindowIndexing:
    def test_index_of_floors_and_clamps(self):
        series = WindowedCounter(0.5)
        assert series.index_of(0.0) == 0
        assert series.index_of(0.49) == 0
        assert series.index_of(0.5) == 1
        assert series.index_of(1.74) == 3
        # pre-horizon times (carry-over arrivals) clamp into window 0
        assert series.index_of(-0.3) == 0

    def test_indices_of_matches_scalar_index_of(self):
        series = WindowedCounter(0.37)
        times = np.array([-1.0, 0.0, 0.1, 0.36, 0.37, 1.0, 5.55, 123.4])
        vectorized = series.indices_of(times)
        assert vectorized.tolist() == [
            series.index_of(t) for t in times.tolist()
        ]

    def test_bounds_are_half_open_window_edges(self):
        series = WindowedCounter(0.25)
        assert series.bounds(0) == (0.0, 0.25)
        assert series.bounds(4) == (1.0, 1.25)

    def test_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            WindowedCounter(0.0)
        with pytest.raises(ValueError, match="capacity"):
            WindowedCounter(1.0, capacity=0)


class TestWindowedCounter:
    def test_add_times_equals_scalar_adds(self):
        times = np.array([0.05, 0.1, 0.72, 0.74, 1.3, 2.9])
        vectorized = WindowedCounter(0.5)
        vectorized.add_times(times)
        scalar = WindowedCounter(0.5)
        for time in times.tolist():
            scalar.add(time)
        assert vectorized.series() == scalar.series()
        assert vectorized.total() == len(times)

    def test_merge_adds_counts_per_window(self):
        left = WindowedCounter(1.0)
        left.add_times(np.array([0.5, 1.5]))
        right = WindowedCounter(1.0)
        right.add_times(np.array([1.6, 1.7, 3.2]))
        merged = left.merge(right)
        assert merged is left
        assert left.series() == [(0, 1.0), (1, 3.0), (3, 1.0)]

    def test_merge_rejects_mismatched_window_widths(self):
        with pytest.raises(ValueError, match="window widths"):
            WindowedCounter(1.0).merge(WindowedCounter(0.5))

    def test_ring_evicts_oldest_past_capacity(self):
        series = WindowedCounter(1.0, capacity=3)
        series.add_times(np.arange(10) + 0.5)  # windows 0..9
        assert series.indices() == [7, 8, 9]

    def test_late_stragglers_into_evicted_windows_stay_evicted(self):
        series = WindowedCounter(1.0, capacity=2)
        series.add(9.5)
        series.add(0.5)  # window 0 is below the ring floor already
        assert series.indices() == [9]

    def test_round_trip_through_dict(self):
        series = WindowedCounter(0.5, capacity=16)
        series.add_times(np.array([0.1, 0.6, 0.61, 4.9]))
        clone = WindowedCounter.from_dict(series.as_dict())
        assert clone.as_dict() == series.as_dict()
        assert clone.series() == series.series()


class TestWindowedGauge:
    def test_observe_keeps_per_window_maximum(self):
        gauge = WindowedGauge(1.0)
        gauge.observe(0.5, 3.0)
        gauge.observe(0.6, 1.0)
        gauge.observe(1.5, 2.0)
        assert gauge.series() == [(0, 3.0), (1, 2.0)]
        assert gauge.value(7) is None

    def test_merge_keeps_maximum(self):
        left = WindowedGauge(1.0)
        left.observe(0.5, 3.0)
        right = WindowedGauge(1.0)
        right.observe(0.5, 5.0)
        right.observe(1.5, 1.0)
        left.merge(right)
        assert left.series() == [(0, 5.0), (1, 1.0)]

    def test_round_trip_through_dict(self):
        gauge = WindowedGauge(0.25)
        gauge.observe(0.1, 2.5)
        gauge.observe(0.9, 0.5)
        clone = WindowedGauge.from_dict(gauge.as_dict())
        assert clone.as_dict() == gauge.as_dict()


def assert_window_states_match(left, right, minmax_rel=0.0):
    """Per-window sketch equality at the level the fold guarantees.

    Bucket contents, counts, and underflow are exact under any fold
    order; float sums only associate differently, and min/max sit at
    bucket-representative resolution when the dense scatter ran (pass
    ``minmax_rel`` when comparing against exact scalar observes).
    Accepts histograms or their ``as_dict()`` payloads.
    """
    if hasattr(left, "as_dict"):
        left = left.as_dict()
    if hasattr(right, "as_dict"):
        right = right.as_dict()
    a, b = left["windows"], right["windows"]
    assert sorted(a) == sorted(b)
    for window, state in a.items():
        other = b[window]
        assert state["buckets"] == other["buckets"], f"window {window}"
        assert state["count"] == other["count"]
        assert state["underflow"] == other["underflow"]
        assert state["sum"] == pytest.approx(other["sum"], rel=1e-12)
        if minmax_rel:
            assert state["min"] == pytest.approx(other["min"], rel=minmax_rel)
            assert state["max"] == pytest.approx(other["max"], rel=minmax_rel)
        else:
            assert state["min"] == other["min"]
            assert state["max"] == other["max"]


class TestWindowedHistogram:
    def _values(self, seed=0, n=500):
        rng = np.random.default_rng(seed)
        times = rng.uniform(0.0, 5.0, size=n)
        values = rng.lognormal(mean=-4.0, sigma=1.0, size=n)
        return times, values

    def test_vectorized_fold_equals_scalar_observes(self):
        times, values = self._values()
        vectorized = WindowedHistogram(0.5)
        touched = vectorized.observe_values(times, values)
        scalar = WindowedHistogram(0.5)
        for time, value in zip(times.tolist(), values.tolist()):
            scalar.observe(time, value)
        # scalar observes record exact extremes; the dense scatter sits
        # at bucket-representative resolution (the 1% sketch error)
        assert_window_states_match(vectorized, scalar, minmax_rel=0.02)
        assert touched == vectorized.indices()

    def test_precomputed_indices_path_equals_plain_path(self):
        times, values = self._values(seed=1)
        plain = WindowedHistogram(0.5)
        plain_touched = plain.observe_values(times, values)
        shared = WindowedHistogram(0.5)
        indices = shared.indices_of(times)
        shared_touched = shared.observe_values(times, values, indices=indices)
        assert shared.as_dict() == plain.as_dict()
        assert shared_touched == plain_touched

    def test_fold_is_chunking_invariant(self):
        times, values = self._values(seed=2)
        whole = WindowedHistogram(0.5)
        whole.observe_values(times, values)
        chunked = WindowedHistogram(0.5)
        for lo in range(0, times.size, 37):
            chunked.observe_values(times[lo : lo + 37], values[lo : lo + 37])
        assert_window_states_match(chunked, whole)
        for index in whole.indices():
            assert chunked.sketch(index).quantiles([50, 99]) == whole.sketch(
                index
            ).quantiles([50, 99])

    def test_underflow_values_take_fallback_path_and_still_count(self):
        times = np.array([0.1, 0.2, 0.7])
        values = np.array([0.0, 0.0, 0.0])  # below any sketch bucket
        histogram = WindowedHistogram(0.5)
        touched = histogram.observe_values(times, values)
        assert touched == [0, 1]
        assert histogram.sketch(0).count == 2
        assert histogram.sketch(1).count == 1

    def test_quantiles_stay_within_sketch_bound(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(1e-3, 1.0, size=4000)
        times = np.full(values.shape, 0.1)
        histogram = WindowedHistogram(1.0, quantile_error=0.01)
        histogram.observe_values(times, values)
        sketch = histogram.sketch(0)
        exact = np.quantile(values, 0.99)
        assert sketch.quantiles([99])[0] == pytest.approx(exact, rel=0.03)

    def test_merge_equals_union_fold(self):
        times, values = self._values(seed=4)
        left = WindowedHistogram(0.5)
        left.observe_values(times[:250], values[:250])
        right = WindowedHistogram(0.5)
        right.observe_values(times[250:], values[250:])
        left.merge(right)
        union = WindowedHistogram(0.5)
        union.observe_values(times, values)
        assert_window_states_match(left, union)

    def test_merge_rejects_mismatched_error_bounds(self):
        with pytest.raises(ValueError, match="error bounds"):
            WindowedHistogram(1.0, quantile_error=0.01).merge(
                WindowedHistogram(1.0, quantile_error=0.05)
            )

    def test_round_trip_through_dict(self):
        times, values = self._values(seed=5, n=100)
        histogram = WindowedHistogram(0.5)
        histogram.observe_values(times, values)
        clone = WindowedHistogram.from_dict(histogram.as_dict())
        assert clone.as_dict() == histogram.as_dict()
        for index in histogram.indices():
            assert clone.sketch(index).quantiles([50, 99]) == histogram.sketch(
                index
            ).quantiles([50, 99])


def _feed(monitor, finishes, latencies):
    finishes = np.asarray(finishes, dtype=np.float64)
    latencies = np.asarray(latencies, dtype=np.float64)
    arrivals = finishes - latencies
    monitor.observe_chunk(arrivals, arrivals, finishes)


def assert_monitors_match(left, right, ignore_chunks=False):
    """Full-monitor equality, latency sketches at fold-order fidelity."""
    a, b = left.as_dict(), right.as_dict()
    assert_window_states_match(a.pop("latency"), b.pop("latency"))
    if ignore_chunks:
        a.pop("chunks")
        b.pop("chunks")
    assert a == b


class TestServingMonitor:
    def test_completions_land_in_finish_window(self):
        monitor = ServingMonitor(0.5)
        # arrival in window 0, finish in window 2: telemetry reports the
        # event when it happened, not when it was requested
        _feed(monitor, [1.2], [1.1])
        assert monitor.window_indices() == [2]
        stats = monitor.window_stats(2)
        assert stats.completed == 1
        assert stats.p50 == pytest.approx(1.1, rel=0.02)

    def test_chunking_invariance(self):
        rng = np.random.default_rng(6)
        finishes = np.sort(rng.uniform(0.0, 3.0, size=300))
        latencies = rng.uniform(1e-3, 0.1, size=300)
        whole = ServingMonitor(0.25)
        _feed(whole, finishes, latencies)
        split = ServingMonitor(0.25)
        _feed(split, finishes[:100], latencies[:100])
        _feed(split, finishes[100:], latencies[100:])
        assert whole.chunks == 1 and split.chunks == 2
        assert_monitors_match(split, whole, ignore_chunks=True)

    def test_merge_equals_union_feed(self):
        rng = np.random.default_rng(7)
        finishes = np.sort(rng.uniform(0.0, 3.0, size=200))
        latencies = rng.uniform(1e-3, 0.1, size=200)
        left = ServingMonitor(0.25)
        _feed(left, finishes[:90], latencies[:90])
        left.observe_sheds(np.array([0.4, 0.6]))
        right = ServingMonitor(0.25)
        _feed(right, finishes[90:], latencies[90:])
        right.observe_kills(np.array([1.1]))
        union = ServingMonitor(0.25)
        _feed(union, finishes[:90], latencies[:90])
        _feed(union, finishes[90:], latencies[90:])
        union.observe_sheds(np.array([0.4, 0.6]))
        union.observe_kills(np.array([1.1]))
        assert_monitors_match(left.merge(right), union)

    def test_merge_validation(self):
        with pytest.raises(ValueError, match="window widths"):
            ServingMonitor(0.5).merge(ServingMonitor(0.25))
        with pytest.raises(ValueError, match="quantile errors"):
            ServingMonitor(0.5).merge(
                ServingMonitor(0.5, quantile_error=0.05)
            )

    def test_window_stats_rates(self):
        monitor = ServingMonitor(0.5)
        _feed(monitor, [0.1, 0.2, 0.3], [0.01, 0.02, 0.03])
        monitor.observe_sheds(np.array([0.4]))
        stats = monitor.window_stats(0)
        assert stats.completed == 3 and stats.shed == 1
        assert stats.rps == pytest.approx(3 / 0.5)
        assert stats.availability == pytest.approx(0.75)
        assert stats.shed_rate == pytest.approx(0.25)
        assert stats.peak_latency == pytest.approx(0.03, rel=0.02)
        # an untouched window reads as empty, not missing
        empty = monitor.window_stats(9)
        assert empty.completed == 0 and empty.availability == 1.0
        assert empty.p50 is None

    def test_timeline_covers_shed_only_windows(self):
        monitor = ServingMonitor(0.5)
        _feed(monitor, [0.1], [0.01])
        monitor.observe_sheds(np.array([2.2]))
        indices = [stats.index for stats in monitor.timeline()]
        assert indices == [0, 4]

    def test_round_trip_through_dict(self):
        monitor = ServingMonitor(0.5, quantile_error=0.02)
        _feed(monitor, [0.1, 0.7, 1.3], [0.01, 0.05, 0.02])
        monitor.observe_sheds(np.array([0.9]))
        monitor.observe_kills(np.array([0.95]))
        clone = ServingMonitor.from_dict(monitor.as_dict())
        assert clone.as_dict() == monitor.as_dict()
        assert [s.as_dict() for s in clone.timeline()] == [
            s.as_dict() for s in monitor.timeline()
        ]

    def test_for_horizon(self):
        monitor = ServingMonitor.for_horizon(10.0, 40)
        assert monitor.window_seconds == pytest.approx(0.25)
        assert monitor.capacity >= 80
        with pytest.raises(ValueError, match="horizon"):
            ServingMonitor.for_horizon(0.0, 10)
        with pytest.raises(ValueError, match="window"):
            ServingMonitor.for_horizon(1.0, 0)

    def test_default_capacity_is_roomy(self):
        monitor = ServingMonitor(0.5)
        assert monitor.requests.capacity == DEFAULT_WINDOW_CAPACITY
