"""SLO spec grammar and multi-window burn-rate alerting."""

import json

import numpy as np
import pytest

from repro.obs.slo import (
    BurnRatePolicy,
    SloSpec,
    evaluate_slo,
    parse_slo,
)
from repro.obs.windows import ServingMonitor


class TestParseGrammar:
    def test_latency_clause_with_units(self):
        for text, seconds in [
            ("p99<50ms", 0.05),
            ("p99<50000us", 0.05),
            ("p99<50000000ns", 0.05),
            ("p99<0.05s", 0.05),
            ("p99<0.05", 0.05),
        ]:
            (objective,) = SloSpec.parse(text).objectives
            assert objective.kind == "latency"
            assert objective.threshold_seconds == pytest.approx(seconds)
            assert objective.percentile == 99.0
            assert objective.budget == pytest.approx(0.01)

    def test_fractional_percentile_and_le(self):
        (objective,) = SloSpec.parse("p99.9 <= 10ms").objectives
        assert objective.budget == pytest.approx(0.001)
        assert objective.threshold_seconds == pytest.approx(0.01)

    def test_availability_clause(self):
        for text in ("avail>0.999", "availability >= 0.999"):
            (objective,) = SloSpec.parse(text).objectives
            assert objective.kind == "availability"
            assert objective.target == pytest.approx(0.999)
            assert objective.budget == pytest.approx(0.001)
            assert objective.name == "avail>0.999"

    def test_shed_clause(self):
        for text in ("shed<0.01", "shed_rate <= 0.01"):
            (objective,) = SloSpec.parse(text).objectives
            assert objective.kind == "shed_rate"
            assert objective.budget == pytest.approx(0.01)
            assert objective.name == "shed<0.01"

    def test_multi_clause_spec_keeps_order(self):
        spec = parse_slo("p99<50ms, avail>0.999, shed<0.01")
        assert [o.kind for o in spec.objectives] == [
            "latency", "availability", "shed_rate",
        ]
        assert spec.text == "p99<50ms, avail>0.999, shed<0.01"

    def test_as_dict_is_json_ready(self):
        spec = parse_slo("p99<50ms,avail>0.999")
        out = json.loads(json.dumps(spec.as_dict()))
        assert out["objectives"][0]["threshold_seconds"] == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            " , ,",
            "p99",
            "latency<50ms",
            "p0<50ms",          # percentile must be in (0, 100)
            "p100<50ms",
            "p99<0ms",          # threshold must be positive
            "p99<50m",          # unknown unit
            "avail>1",          # floor must be in [0, 1)
            "avail>1.5",
            "shed<0",           # ceiling must be in (0, 1]
            "shed<1.5",
            "p99<50ms;avail>0.9",  # wrong separator
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)


def _monitor(window_seconds=0.1, quantile_error=0.01):
    return ServingMonitor(window_seconds, quantile_error=quantile_error)


def _complete(monitor, window, count, latency):
    """``count`` completions with ``latency`` inside window ``window``."""
    start, end = monitor.requests.bounds(window)
    finishes = np.linspace(start, end, count, endpoint=False)
    arrivals = finishes - latency
    monitor.observe_chunk(arrivals, arrivals, finishes)


class TestEvaluate:
    def test_clean_run_is_ok(self):
        monitor = _monitor()
        for window in range(20):
            _complete(monitor, window, 50, latency=0.005)
        report = evaluate_slo(monitor, "p99<50ms,avail>0.999,shed<0.01")
        assert report.ok
        assert report.alerts == []
        for result in report.results:
            assert result.bad_events == 0
            assert result.total_events == 1000
            assert result.budget_consumed == 0.0

    def test_accepts_compiled_spec_and_string(self):
        monitor = _monitor()
        _complete(monitor, 0, 10, latency=0.001)
        by_text = evaluate_slo(monitor, "p99<50ms")
        by_spec = evaluate_slo(monitor, SloSpec.parse("p99<50ms"))
        assert by_text.as_dict() == by_spec.as_dict()

    def test_empty_monitor_is_vacuously_ok(self):
        report = evaluate_slo(_monitor(), "p99<50ms")
        assert report.ok and report.alerts == []
        (result,) = report.results
        assert result.windows == () and result.total_events == 0

    def test_shed_burst_fires_fast_and_slow_inside_burst_window(self):
        monitor = _monitor()
        for window in range(20):
            _complete(monitor, window, 100, latency=0.005)
        # a burst of sheds in window 12: far beyond the 0.1% avail budget
        burst_start, burst_end = monitor.requests.bounds(12)
        monitor.observe_sheds(np.linspace(burst_start, burst_end, 40, endpoint=False))
        report = evaluate_slo(monitor, "avail>0.999")
        assert not report.ok
        severities = {alert.severity for alert in report.alerts}
        assert severities == {"fast", "slow"}
        for alert in report.alerts:
            assert burst_start < alert.time <= burst_end
            assert alert.objective == "avail>0.999"
            assert alert.burn_rate > 1.0

    def test_latency_objective_counts_slow_requests_via_sketch(self):
        monitor = _monitor()
        for window in range(10):
            _complete(monitor, window, 90, latency=0.005)
            _complete(monitor, window, 10, latency=0.5)  # over threshold
        report = evaluate_slo(monitor, "p99<50ms")
        (result,) = report.results
        assert result.total_events == 1000
        # 10% bad against a 1% budget: the SLO is decisively lost
        assert result.bad_events == 100
        assert result.budget_consumed == pytest.approx(10.0)
        assert not result.ok

    def test_alerts_are_rising_edge_only(self):
        monitor = _monitor()
        for window in range(20):
            _complete(monitor, window, 100, latency=0.005)
            start, end = monitor.requests.bounds(window)
            if window >= 10:  # condition stays true from window 10 on
                monitor.observe_sheds(
                    np.linspace(start, end, 30, endpoint=False)
                )
        report = evaluate_slo(monitor, "avail>0.999")
        fast = [a for a in report.alerts if a.severity == "fast"]
        slow = [a for a in report.alerts if a.severity == "slow"]
        assert len(fast) == 1 and len(slow) == 1

    def test_window_ok_reflects_per_window_burn(self):
        monitor = _monitor()
        for window in range(10):
            _complete(monitor, window, 100, latency=0.005)
        start, end = monitor.requests.bounds(5)
        monitor.observe_sheds(np.linspace(start, end, 50, endpoint=False))
        report = evaluate_slo(monitor, "avail>0.99")
        assert report.window_ok(4)
        assert not report.window_ok(5)
        assert report.window_ok(6)

    def test_interior_empty_windows_occupy_burn_positions(self):
        monitor = _monitor()
        _complete(monitor, 0, 50, latency=0.005)
        _complete(monitor, 9, 50, latency=0.005)
        report = evaluate_slo(monitor, "avail>0.999")
        (result,) = report.results
        assert [v.index for v in result.windows] == list(range(10))
        assert all(v.bad == 0 for v in result.windows)

    def test_report_as_dict_round_trips_through_json(self):
        monitor = _monitor()
        _complete(monitor, 0, 100, latency=0.005)
        monitor.observe_sheds(np.array([0.05]))
        report = evaluate_slo(monitor, "avail>0.5,p99<50ms")
        out = json.loads(json.dumps(report.as_dict()))
        assert out["ok"] is True
        assert {r["objective"]["kind"] for r in out["results"]} == {
            "availability", "latency",
        }

    def test_alert_timeline_sorted_by_time(self):
        monitor = _monitor()
        for window in range(20):
            _complete(monitor, window, 50, latency=0.005)
        start, end = monitor.requests.bounds(3)
        monitor.observe_sheds(np.linspace(start, end, 40, endpoint=False))
        _complete(monitor, 15, 50, latency=0.9)
        report = evaluate_slo(monitor, "p99<50ms,avail>0.999")
        times = [alert.time for alert in report.alerts]
        assert times == sorted(times)
        assert {alert.objective for alert in report.alerts} == {
            "p99<0.05s", "avail>0.999",
        }


class TestBurnRatePolicy:
    def test_fast_span_is_at_least_one_window(self):
        policy = BurnRatePolicy()
        assert policy.fast_span(1) == 1
        assert policy.fast_span(10) == 1
        assert policy.fast_span(100) == 5

    def test_custom_policy_changes_alerting(self):
        monitor = _monitor()
        for window in range(10):
            _complete(monitor, window, 100, latency=0.005)
        start, end = monitor.requests.bounds(5)
        monitor.observe_sheds(np.linspace(start, end, 5, endpoint=False))
        strict = evaluate_slo(
            monitor, "avail>0.99",
            policy=BurnRatePolicy(fast_budget_fraction=0.01),
        )
        lax = evaluate_slo(
            monitor, "avail>0.99",
            policy=BurnRatePolicy(fast_budget_fraction=1.0),
        )
        assert any(a.severity == "fast" for a in strict.alerts)
        assert not any(a.severity == "fast" for a in lax.alerts)
