"""EvalCache: fingerprints, hit/miss counters, clear(), model wiring."""

import dataclasses

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.hw.dram import DramPorts
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.perf.cache import EvalCache, NullCache, design_fingerprint
from repro.workloads.gemm import GemmShape


@pytest.fixture
def design():
    return CharmDesign(config_by_name("C6"))


@pytest.fixture
def workload():
    return GemmShape(2048, 2048, 2048)


class TestFingerprint:
    def test_hashable(self, design):
        hash(design_fingerprint(design))

    def test_equal_designs_equal_fingerprints(self, design):
        other = CharmDesign(config_by_name("C6"))
        assert design_fingerprint(design) == design_fingerprint(other)

    def test_port_change_changes_fingerprint(self, design):
        assert design_fingerprint(design) != design_fingerprint(
            design.with_ports(DramPorts(2, 1))
        )

    def test_buffering_change_changes_fingerprint(self, design):
        assert design_fingerprint(design) != design_fingerprint(
            design.with_single_buffering()
        )

    def test_device_perturbation_changes_fingerprint(self, design):
        derated = dataclasses.replace(
            design, device=dataclasses.replace(design.device, aie_freq_hz=1e9)
        )
        assert design_fingerprint(design) != design_fingerprint(derated)

    def test_different_configs_differ(self, design):
        other = CharmDesign(config_by_name("C1"))
        assert design_fingerprint(design) != design_fingerprint(other)


class TestEvalCache:
    def test_miss_then_hit(self):
        cache = EvalCache()
        calls = []
        assert cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7) == 7
        assert calls == [1]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_counters_per_table(self):
        cache = EvalCache()
        cache.get_or_compute("aie_level", "a", lambda: 1)
        cache.get_or_compute("aie_level", "a", lambda: 1)
        cache.get_or_compute("dram_level", "d", lambda: 2)
        counters = cache.counters()
        assert counters["aie_level"] == {"hits": 1, "misses": 1, "entries": 1}
        assert counters["dram_level"] == {"hits": 0, "misses": 1, "entries": 1}
        assert counters["estimate"]["entries"] == 0

    def test_clear_resets_everything(self):
        cache = EvalCache()
        cache.get_or_compute("estimate", "k", lambda: 7)
        cache.get_or_compute("estimate", "k", lambda: 7)
        cache.clear()
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.entries == 0

    def test_eviction_bounds_entries(self):
        cache = EvalCache(max_entries=8)
        for i in range(50):
            cache.get_or_compute("estimate", i, lambda i=i: i)
        assert len(cache._tables["estimate"]) <= 8

    def test_null_cache_never_retains(self):
        cache = NullCache()
        calls = []
        for _ in range(3):
            cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7)
        assert len(calls) == 3
        assert cache.hits == 0
        assert cache.entries == 0


class TestModelCaching:
    def test_second_estimate_is_a_hit(self, design, workload):
        cache = EvalCache()
        AnalyticalModel(design, cache=cache).estimate(workload)
        assert cache.counters()["estimate"] == {"hits": 0, "misses": 1, "entries": 1}
        AnalyticalModel(design, cache=cache).estimate(workload)
        assert cache.counters()["estimate"]["hits"] == 1

    def test_cached_equals_uncached(self, design, workload):
        cached = AnalyticalModel(design, cache=EvalCache()).estimate(workload)
        uncached = AnalyticalModel(design, cache=NullCache()).estimate(workload)
        assert cached == uncached
        assert repr(cached.total_seconds) == repr(uncached.total_seconds)

    def test_aie_level_computed_once_per_estimate(self, design, workload, monkeypatch):
        """The estimate path derives Eq. 1 inputs exactly once."""
        model = AnalyticalModel(design, cache=NullCache())
        calls = []
        original = AnalyticalModel._compute_aie_level_times

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(AnalyticalModel, "_compute_aie_level_times", counting)
        model.estimate(workload)
        assert len(calls) == 1

    def test_instance_memo_avoids_repeat_lookups(self, design):
        cache = EvalCache()
        model = AnalyticalModel(design, cache=cache)
        first = model.aie_level_times()
        lookups = cache.hits + cache.misses
        assert model.aie_level_times() is first
        assert cache.hits + cache.misses == lookups

    def test_distinct_workloads_do_not_collide(self, design):
        cache = EvalCache()
        model = AnalyticalModel(design, cache=cache)
        small = model.estimate(GemmShape(512, 512, 512))
        large = model.estimate(GemmShape(4096, 4096, 4096))
        assert small.total_seconds != large.total_seconds
