"""EvalCache: fingerprints, hit/miss counters, clear(), model wiring."""

import dataclasses

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.hw.dram import DramPorts
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.perf.cache import (
    CACHE_SCHEMA_VERSION,
    DISK_BASENAME,
    EvalCache,
    NullCache,
    design_fingerprint,
)
from repro.workloads.gemm import GemmShape


@pytest.fixture
def design():
    return CharmDesign(config_by_name("C6"))


@pytest.fixture
def workload():
    return GemmShape(2048, 2048, 2048)


class TestFingerprint:
    def test_hashable(self, design):
        hash(design_fingerprint(design))

    def test_equal_designs_equal_fingerprints(self, design):
        other = CharmDesign(config_by_name("C6"))
        assert design_fingerprint(design) == design_fingerprint(other)

    def test_port_change_changes_fingerprint(self, design):
        assert design_fingerprint(design) != design_fingerprint(
            design.with_ports(DramPorts(2, 1))
        )

    def test_buffering_change_changes_fingerprint(self, design):
        assert design_fingerprint(design) != design_fingerprint(
            design.with_single_buffering()
        )

    def test_device_perturbation_changes_fingerprint(self, design):
        derated = dataclasses.replace(
            design, device=dataclasses.replace(design.device, aie_freq_hz=1e9)
        )
        assert design_fingerprint(design) != design_fingerprint(derated)

    def test_different_configs_differ(self, design):
        other = CharmDesign(config_by_name("C1"))
        assert design_fingerprint(design) != design_fingerprint(other)


class TestEvalCache:
    def test_miss_then_hit(self):
        cache = EvalCache()
        calls = []
        assert cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7) == 7
        assert calls == [1]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_counters_per_table(self):
        cache = EvalCache()
        cache.get_or_compute("aie_level", "a", lambda: 1)
        cache.get_or_compute("aie_level", "a", lambda: 1)
        cache.get_or_compute("dram_level", "d", lambda: 2)
        counters = cache.counters()
        assert counters["aie_level"] == {"hits": 1, "misses": 1, "entries": 1}
        assert counters["dram_level"] == {"hits": 0, "misses": 1, "entries": 1}
        assert counters["estimate"]["entries"] == 0

    def test_clear_resets_everything(self):
        cache = EvalCache()
        cache.get_or_compute("estimate", "k", lambda: 7)
        cache.get_or_compute("estimate", "k", lambda: 7)
        cache.clear()
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.entries == 0

    def test_eviction_bounds_entries(self):
        cache = EvalCache(max_entries=8)
        for i in range(50):
            cache.get_or_compute("estimate", i, lambda i=i: i)
        assert len(cache._tables["estimate"]) <= 8

    def test_null_cache_never_retains(self):
        cache = NullCache()
        calls = []
        for _ in range(3):
            cache.get_or_compute("estimate", "k", lambda: calls.append(1) or 7)
        assert len(calls) == 3
        assert cache.hits == 0
        assert cache.entries == 0


class TestDiskPersistence:
    def _warm_cache(self):
        cache = EvalCache()
        cache.get_or_compute("estimate", ("fp", "2048x2048x2048"), lambda: 7.5)
        cache.get_or_compute("aie_level", ("fp",), lambda: {"cycles": 3})
        return cache

    def test_roundtrip(self, tmp_path):
        cache = self._warm_cache()
        saved = cache.save_disk(str(tmp_path))
        assert saved == 2
        assert (tmp_path / DISK_BASENAME).exists()
        fresh = EvalCache()
        assert fresh.load_disk(str(tmp_path)) == 2
        calls = []
        value = fresh.get_or_compute(
            "estimate", ("fp", "2048x2048x2048"), lambda: calls.append(1) or -1
        )
        assert value == 7.5 and calls == []  # warm hit, no recompute
        assert fresh.disk_stats()["loaded"] == 2

    def test_roundtrip_with_real_estimates(self, design, workload, tmp_path):
        cache = EvalCache()
        expected = AnalyticalModel(design, cache=cache).estimate(workload)
        assert cache.save_disk(str(tmp_path)) > 0
        fresh = EvalCache()
        assert fresh.load_disk(str(tmp_path)) > 0
        warm = AnalyticalModel(design, cache=fresh).estimate(workload)
        assert warm.total_seconds == expected.total_seconds
        assert fresh.misses == 0  # every level served from the snapshot

    def test_missing_snapshot_is_silent_cold_start(self, tmp_path):
        cache = EvalCache()
        assert cache.load_disk(str(tmp_path / "nowhere")) == 0
        assert cache.disk_stats()["cold_starts"] == 1

    def test_corrupt_snapshot_is_silent_cold_start(self, tmp_path):
        (tmp_path / DISK_BASENAME).write_bytes(b"not a pickle at all")
        cache = EvalCache()
        assert cache.load_disk(str(tmp_path)) == 0
        assert cache.disk_stats()["cold_starts"] == 1
        assert cache.entries == 0

    def test_truncated_snapshot_is_silent_cold_start(self, tmp_path):
        self._warm_cache().save_disk(str(tmp_path))
        path = tmp_path / DISK_BASENAME
        path.write_bytes(path.read_bytes()[:-7])
        cache = EvalCache()
        assert cache.load_disk(str(tmp_path)) == 0
        assert cache.disk_stats()["cold_starts"] == 1

    def test_version_mismatch_is_silent_cold_start(self, tmp_path):
        import pickle

        payload = {"version": CACHE_SCHEMA_VERSION + 1, "tables": {"estimate": {"k": 1}}}
        (tmp_path / DISK_BASENAME).write_bytes(pickle.dumps(payload))
        cache = EvalCache()
        assert cache.load_disk(str(tmp_path)) == 0
        assert cache.disk_stats()["cold_starts"] == 1

    def test_load_never_clobbers_fresh_entries(self, tmp_path):
        self._warm_cache().save_disk(str(tmp_path))
        cache = EvalCache()
        cache.get_or_compute("estimate", ("fp", "2048x2048x2048"), lambda: 99.0)
        cache.load_disk(str(tmp_path))
        assert (
            cache.get_or_compute(
                "estimate", ("fp", "2048x2048x2048"), lambda: -1
            )
            == 99.0
        )

    def test_load_respects_max_entries(self, tmp_path):
        big = EvalCache()
        for i in range(20):
            big.get_or_compute("estimate", i, lambda i=i: i)
        big.save_disk(str(tmp_path))
        small = EvalCache(max_entries=4)
        assert small.load_disk(str(tmp_path)) == 4
        assert len(small._tables["estimate"]) == 4

    def test_unwritable_directory_returns_zero(self):
        cache = self._warm_cache()
        assert cache.save_disk("/proc/definitely/not/writable") == 0
        assert cache.disk_stats()["saved"] == 0

    def test_reset_counters_zeroes_disk_stats(self, tmp_path):
        cache = self._warm_cache()
        cache.save_disk(str(tmp_path))
        cache.reset_counters()
        assert cache.disk_stats() == {"loaded": 0, "saved": 0, "cold_starts": 0}
        assert cache.entries == 2  # entries survive a counter reset

    def test_mapping_proxy_roundtrip(self, tmp_path):
        import types

        cache = EvalCache()
        proxy = types.MappingProxyType({"a": 1})
        cache.get_or_compute("estimate", "proxy", lambda: proxy)
        cache.save_disk(str(tmp_path))
        fresh = EvalCache()
        fresh.load_disk(str(tmp_path))
        restored = fresh.get_or_compute("estimate", "proxy", lambda: None)
        assert isinstance(restored, types.MappingProxyType)
        assert dict(restored) == {"a": 1}


class TestModelCaching:
    def test_second_estimate_is_a_hit(self, design, workload):
        cache = EvalCache()
        AnalyticalModel(design, cache=cache).estimate(workload)
        assert cache.counters()["estimate"] == {"hits": 0, "misses": 1, "entries": 1}
        AnalyticalModel(design, cache=cache).estimate(workload)
        assert cache.counters()["estimate"]["hits"] == 1

    def test_cached_equals_uncached(self, design, workload):
        cached = AnalyticalModel(design, cache=EvalCache()).estimate(workload)
        uncached = AnalyticalModel(design, cache=NullCache()).estimate(workload)
        assert cached == uncached
        assert repr(cached.total_seconds) == repr(uncached.total_seconds)

    def test_aie_level_computed_once_per_estimate(self, design, workload, monkeypatch):
        """The estimate path derives Eq. 1 inputs exactly once."""
        model = AnalyticalModel(design, cache=NullCache())
        calls = []
        original = AnalyticalModel._compute_aie_level_times

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(AnalyticalModel, "_compute_aie_level_times", counting)
        model.estimate(workload)
        assert len(calls) == 1

    def test_instance_memo_avoids_repeat_lookups(self, design):
        cache = EvalCache()
        model = AnalyticalModel(design, cache=cache)
        first = model.aie_level_times()
        lookups = cache.hits + cache.misses
        assert model.aie_level_times() is first
        assert cache.hits + cache.misses == lookups

    def test_distinct_workloads_do_not_collide(self, design):
        cache = EvalCache()
        model = AnalyticalModel(design, cache=cache)
        small = model.estimate(GemmShape(512, 512, 512))
        large = model.estimate(GemmShape(4096, 4096, 4096))
        assert small.total_seconds != large.total_seconds
