"""Vectorized batch evaluation vs the scalar analytical model.

The contract under test (ISSUE 2): for randomized candidate grids across
precisions and DRAM port setups, batch totals match the scalar
``AnalyticalModel.estimate`` within 1e-9 relative (bit-identical on the
DSE candidate sets), and the feasibility mask reproduces the scalar
``DesignError``/``ValueError`` outcomes exactly.  On top of the kernel,
every batch driver's vectorized opt-in must return results identical to
its serial path.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytical_model import AnalyticalModel
from repro.core.dse import DesignSpaceExplorer
from repro.core.pareto import design_tradeoff_records
from repro.core.sensitivity import SensitivityAnalysis
from repro.core.sweep import sweep
from repro.hw.dram import DramPorts
from repro.hw.specs import VCK5000
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import KERNEL_BY_PRECISION, HardwareConfig, config_by_name
from repro.mapping.grouping import AieGrouping
from repro.perf.cache import NULL_CACHE, NullCache
from repro.perf.vectorized import (
    CandidateGrid,
    batch_estimate,
    batch_estimate_designs,
    rank_feasible,
)
from repro.workloads.gemm import GemmShape

WORKLOAD = GemmShape(1024, 1024, 1024)


def scalar_outcome(design, workload):
    """(feasible, total_seconds) exactly as the batch drivers see it."""
    try:
        return True, AnalyticalModel(design, cache=NULL_CACHE).estimate(workload).total_seconds
    except ValueError:  # DesignError is a ValueError subclass
        return False, None


# ----------------------------------------------------------------------
# Property: randomized grids match the scalar model
# ----------------------------------------------------------------------
_PRECISIONS = st.sampled_from(list(Precision))
_PORTS = st.sampled_from(
    [DramPorts(2, 1), DramPorts(4, 2), DramPorts(8, 4), DramPorts(1, 1)]
)
_KERNEL_POOL = [
    GemmShape(32, 32, 32),
    GemmShape(64, 64, 64),
    GemmShape(64, 32, 64),
    GemmShape(128, 128, 128),  # infeasible at FP32, exercises the memory rules
]
_DIM = st.integers(1, 2048)


@st.composite
def design_params(draw):
    precision = draw(_PRECISIONS)
    kernel = draw(st.sampled_from(_KERNEL_POOL))
    gm = draw(st.integers(1, 16))
    gk = draw(st.integers(1, 16))
    gn = draw(st.integers(1, 16))
    num_plios = draw(st.integers(3, 320))
    ports = draw(_PORTS)
    double_buffered = draw(st.booleans())
    starved = draw(st.booleans())
    return precision, kernel, gm, gk, gn, num_plios, ports, double_buffered, starved


def build_design(params):
    precision, kernel, gm, gk, gn, num_plios, ports, double_buffered, starved = params
    device = (
        dataclasses.replace(VCK5000, pl_usable_fraction=0.01) if starved else VCK5000
    )
    config = HardwareConfig(
        name=f"prop-{gm}x{gk}x{gn}-{num_plios}-{ports}",
        grouping=AieGrouping(gm, gk, gn, kernel, precision),
        num_plios=num_plios,
        dram_ports=ports,
    )
    return CharmDesign(config, device, pl_double_buffered=double_buffered)


class TestPropertyAgainstScalar:
    @given(design_params(), _DIM, _DIM, _DIM)
    @settings(max_examples=60, deadline=None)
    def test_single_candidate_matches_scalar(self, params, m, k, n):
        design = build_design(params)
        workload = GemmShape(m, k, n)
        batch = batch_estimate_designs([design], workload)
        feasible, total = scalar_outcome(design, workload)
        assert bool(batch.feasible[0]) == feasible
        if feasible:
            assert float(batch.total_seconds[0]) == pytest.approx(total, rel=1e-9)
        else:
            assert float(batch.total_seconds[0]) == float("inf")

    @given(st.lists(design_params(), min_size=2, max_size=6), _DIM, _DIM, _DIM)
    @settings(max_examples=30, deadline=None)
    def test_mixed_feasibility_grid(self, params_list, m, k, n):
        precision = params_list[0][0]
        designs = [
            build_design((precision,) + tuple(p[1:])) for p in params_list
        ]
        workload = GemmShape(m, k, n)
        batch = batch_estimate_designs(designs, workload)
        for i, design in enumerate(designs):
            feasible, total = scalar_outcome(design, workload)
            assert bool(batch.feasible[i]) == feasible, design.config.name
            if feasible:
                assert float(batch.total_seconds[i]) == pytest.approx(total, rel=1e-9)


# ----------------------------------------------------------------------
# Bit-identity on the full DSE candidate sets
# ----------------------------------------------------------------------
class TestBitIdentityOnDseGrids:
    @pytest.mark.parametrize("precision", list(Precision))
    @pytest.mark.parametrize(
        "workload",
        [WORKLOAD, GemmShape(4096, 512, 2048), GemmShape(100, 333, 70)],
    )
    def test_totals_bit_identical(self, precision, workload):
        explorer = DesignSpaceExplorer(
            precision, max_aies=128, explore_ports=True, cache=NullCache()
        )
        designs = explorer.candidates()
        batch = batch_estimate_designs(designs, workload)
        for i, design in enumerate(designs):
            feasible, total = scalar_outcome(design, workload)
            assert bool(batch.feasible[i]) == feasible
            if feasible:
                assert float(batch.total_seconds[i]) == total  # bitwise

    def test_tile_plans_match_scalar_planner(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=128, cache=NullCache())
        designs = explorer.candidates()
        batch = batch_estimate_designs(designs, WORKLOAD)
        for i, design in enumerate(designs):
            plan = design.tile_plan(WORKLOAD)
            assert tuple(int(x) for x in batch.multiples[i]) == plan.multiples
            assert int(batch.num_dram_tiles[i]) == plan.num_dram_tiles

    def test_infeasible_candidates_counted_not_dropped(self):
        starved = dataclasses.replace(VCK5000, pl_usable_fraction=0.01)
        explorer = DesignSpaceExplorer(
            Precision.FP32, device=starved, max_aies=400, explore_ports=True,
            cache=NullCache(),
        )
        designs = explorer.candidates()
        batch = batch_estimate_designs(designs, WORKLOAD)
        assert len(batch) == len(designs)
        assert batch.num_infeasible > 0
        assert batch.num_feasible + batch.num_infeasible == len(designs)
        infeasible = np.flatnonzero(~batch.feasible)
        assert np.all(np.isinf(batch.total_seconds[infeasible]))

    def test_materialized_estimates_equal_scalar(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64, cache=NullCache())
        designs = explorer.candidates()
        batch = batch_estimate_designs(designs, WORKLOAD)
        for i in range(len(designs)):
            reference = AnalyticalModel(designs[i], cache=NULL_CACHE).estimate(WORKLOAD)
            assert batch.estimate(i) == reference


# ----------------------------------------------------------------------
# Grid construction contracts
# ----------------------------------------------------------------------
class TestCandidateGrid:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CandidateGrid.from_designs([], WORKLOAD)

    def test_rejects_mixed_precision(self):
        designs = [
            CharmDesign(config_by_name("C1")),
            CharmDesign(config_by_name("C7")),
        ]
        with pytest.raises(ValueError):
            CandidateGrid.from_designs(designs, WORKLOAD)

    def test_rejects_workload_length_mismatch(self):
        design = CharmDesign(config_by_name("C1"))
        with pytest.raises(ValueError):
            CandidateGrid.from_designs([design], [WORKLOAD, WORKLOAD])

    def test_per_candidate_workloads(self):
        design = CharmDesign(config_by_name("C1"))
        shapes = [GemmShape(256, 256, 256), GemmShape(2048, 2048, 2048)]
        batch = batch_estimate_designs([design, design], shapes)
        for i, shape in enumerate(shapes):
            reference = AnalyticalModel(design, cache=NULL_CACHE).estimate(shape)
            assert float(batch.total_seconds[i]) == reference.total_seconds

    def test_from_arrays_matches_designs(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64, cache=NullCache())
        groupings = [
            (g.gm, g.gk, g.gn, explorer._plio_budget_for(g))
            for g in explorer.candidate_groupings()
        ]
        grid = CandidateGrid.from_arrays(
            Precision.FP32,
            [g[0] for g in groupings],
            [g[1] for g in groupings],
            [g[2] for g in groupings],
            [g[3] for g in groupings],
            WORKLOAD,
        )
        batch = batch_estimate(grid)
        for i, (gm, gk, gn, plios) in enumerate(groupings):
            config = HardwareConfig(
                name=f"arr-{i}",
                grouping=AieGrouping(gm, gk, gn, explorer.kernel, Precision.FP32),
                num_plios=plios,
            )
            feasible, total = scalar_outcome(CharmDesign(config), WORKLOAD)
            assert bool(batch.feasible[i]) == feasible
            if feasible:
                assert float(batch.total_seconds[i]) == total

    def test_estimate_raises_for_infeasible_index(self):
        starved = dataclasses.replace(VCK5000, pl_usable_fraction=0.001)
        design = CharmDesign(config_by_name("C6"), device=starved)
        batch = batch_estimate_designs([design], WORKLOAD)
        assert not batch.feasible[0]
        with pytest.raises(ValueError):
            batch.estimate(0)


# ----------------------------------------------------------------------
# Driver identity: DSE / sensitivity / pareto / sweep
# ----------------------------------------------------------------------
def _ranking(points):
    return json.dumps(
        [
            (
                repr(p.config.grouping),
                p.config.num_plios,
                str(p.config.dram_ports),
                repr(p.seconds),
            )
            for p in points
        ]
    )


class TestDriverIdentity:
    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.INT8])
    def test_dse_rankings_byte_identical(self, precision):
        serial = DesignSpaceExplorer(
            precision, max_aies=128, explore_ports=True, cache=NullCache()
        ).explore(WORKLOAD)
        vectorized = DesignSpaceExplorer(
            precision, max_aies=128, explore_ports=True, cache=NullCache(),
            vectorize=True,
        ).explore(WORKLOAD)
        assert _ranking(serial) == _ranking(vectorized)
        assert [p.estimate for p in serial] == [p.estimate for p in vectorized]
        assert serial.evaluated == vectorized.evaluated
        assert serial.skipped == vectorized.skipped

    def test_explore_flag_overrides_constructor(self):
        explorer = DesignSpaceExplorer(
            Precision.FP32, max_aies=64, cache=NullCache(), vectorize=True
        )
        assert _ranking(explorer.explore(WORKLOAD, vectorize=False)) == _ranking(
            explorer.explore(WORKLOAD)
        )

    def test_dse_counts_infeasible(self):
        starved = dataclasses.replace(VCK5000, pl_usable_fraction=0.01)
        serial = DesignSpaceExplorer(
            Precision.FP32, device=starved, max_aies=400, cache=NullCache()
        ).explore(WORKLOAD)
        vectorized = DesignSpaceExplorer(
            Precision.FP32, device=starved, max_aies=400, cache=NullCache(),
            vectorize=True,
        ).explore(WORKLOAD)
        assert serial.skipped > 0
        assert (serial.evaluated, serial.skipped) == (
            vectorized.evaluated,
            vectorized.skipped,
        )
        assert _ranking(serial) == _ranking(vectorized)

    def test_rank_feasible_matches_scalar_sort(self):
        explorer = DesignSpaceExplorer(
            Precision.FP32, max_aies=128, explore_ports=True, cache=NullCache()
        )
        designs = explorer.candidates()
        batch = batch_estimate_designs(designs, WORKLOAD)
        ranked = rank_feasible(batch)
        keyed = sorted(
            (i for i in range(len(designs)) if batch.feasible[i]),
            key=lambda i: (
                float(batch.total_seconds[i]),
                designs[i].config.num_aies,
                designs[i].config.num_plios,
            ),
        )
        assert ranked == keyed

    def test_sensitivity_identity(self):
        design = CharmDesign(config_by_name("C6"))
        serial = SensitivityAnalysis(design, WORKLOAD, cache=NullCache()).summary()
        vectorized = SensitivityAnalysis(
            design, WORKLOAD, cache=NullCache(), vectorize=True
        ).summary()
        for axis in serial:
            assert [p.estimate for p in serial[axis]] == [
                p.estimate for p in vectorized[axis]
            ], axis

    def test_sensitivity_infeasible_axis_raises_like_serial(self):
        design = CharmDesign(config_by_name("C6"))
        serial = SensitivityAnalysis(design, WORKLOAD, cache=NullCache())
        vectorized = SensitivityAnalysis(
            design, WORKLOAD, cache=NullCache(), vectorize=True
        )
        with pytest.raises(ValueError):
            serial.pl_memory_fraction([0.0001])
        with pytest.raises(ValueError):
            vectorized.pl_memory_fraction([0.0001])

    def test_pareto_records_identical(self):
        serial = design_tradeoff_records(WORKLOAD, Precision.FP32, max_aies=64)
        vectorized = design_tradeoff_records(
            WORKLOAD, Precision.FP32, max_aies=64, vectorize=True
        )
        assert serial == vectorized

    def test_sweep_batch_evaluate(self):
        axes = {"x": [1, 2, 3], "y": [10, 20]}

        def evaluate(x, y):
            return None if x == 2 else {"z": x * y}

        serial = sweep(axes, evaluate)
        batch = sweep(
            axes, evaluate, batch_evaluate=lambda pts: [evaluate(**p) for p in pts]
        )
        assert serial.records == batch.records
        assert serial.stats.skipped == batch.stats.skipped

    def test_sweep_batch_evaluate_length_mismatch(self):
        with pytest.raises(ValueError):
            sweep({"x": [1, 2]}, lambda x: {"y": x}, batch_evaluate=lambda pts: [None])


class TestServingPrewarmIdentity:
    def test_service_cache_identical(self):
        from repro.core.multi_acc import AcceleratorPartition
        from repro.sim.serving import ServingSimulator

        partition = AcceleratorPartition(
            [config_by_name("C1"), config_by_name("C7")]  # mixed precision
        )
        shapes = [WORKLOAD, GemmShape(64, 64, 64), GemmShape(333, 100, 70)]
        serial = ServingSimulator(partition)
        vectorized = ServingSimulator(partition)
        assert serial.prewarm(shapes) == vectorized.prewarm(shapes, vectorize=True)
        assert serial._service_cache == vectorized._service_cache
        assert serial.stats.skipped == vectorized.stats.skipped
