"""EvalStats / StatsRegistry behaviour."""

from repro.perf.metrics import EvalStats, StatsRegistry, track


class TestEvalStats:
    def test_defaults(self):
        stats = EvalStats()
        assert stats.evaluations == 0
        assert stats.hit_rate == 0.0
        assert stats.evals_per_second == 0.0

    def test_hit_rate(self):
        stats = EvalStats(cache_hits=3, cache_misses=1)
        assert stats.hit_rate == 0.75

    def test_attempted(self):
        assert EvalStats(evaluations=5, skipped=2).attempted == 7

    def test_merge(self):
        total = EvalStats(evaluations=1, cache_hits=2, wall_seconds=0.5, jobs=1)
        total.merge(EvalStats(evaluations=3, cache_misses=4, skipped=1, jobs=8))
        assert total.evaluations == 4
        assert total.cache_hits == 2
        assert total.cache_misses == 4
        assert total.skipped == 1
        assert total.wall_seconds == 0.5
        assert total.jobs == 8

    def test_snapshot_and_delta(self):
        stats = EvalStats(evaluations=2, cache_hits=5, wall_seconds=0.25, jobs=2)
        before = stats.snapshot()
        stats.evaluations += 3
        stats.cache_hits += 1
        stats.cache_misses += 4
        stats.skipped += 2
        stats.wall_seconds += 0.5
        delta = stats.delta_since(before)
        assert delta.evaluations == 3
        assert delta.cache_hits == 1
        assert delta.cache_misses == 4
        assert delta.skipped == 2
        assert delta.wall_seconds == 0.5
        assert delta.jobs == 2
        # the snapshot is an independent copy, not a view
        assert before.evaluations == 2

    def test_delta_of_unchanged_stats_is_zero(self):
        stats = EvalStats(evaluations=7, cache_hits=9, wall_seconds=1.0)
        delta = stats.delta_since(stats.snapshot())
        assert delta.evaluations == 0
        assert delta.cache_hits == 0
        assert delta.wall_seconds == 0.0

    def test_track_accumulates_wall_time(self):
        stats = EvalStats()
        with track(stats):
            pass
        first = stats.wall_seconds
        assert first >= 0
        with track(stats):
            sum(range(1000))
        assert stats.wall_seconds >= first

    def test_evals_per_second(self):
        stats = EvalStats(evaluations=10, wall_seconds=2.0)
        assert stats.evals_per_second == 5.0

    def test_summary_mentions_counts(self):
        text = EvalStats(evaluations=7, skipped=2, jobs=4).summary()
        assert "7 evaluations" in text
        assert "2 skipped" in text
        assert "jobs=4" in text

    def test_as_dict_round_trip(self):
        stats = EvalStats(evaluations=2, cache_hits=1, cache_misses=1)
        payload = stats.as_dict()
        assert payload["evaluations"] == 2
        assert payload["hit_rate"] == 0.5


class TestStatsRegistry:
    def test_record_and_reset(self):
        registry = StatsRegistry()
        registry.record(EvalStats(evaluations=2))
        registry.record(EvalStats(evaluations=3, skipped=1))
        assert registry.total.evaluations == 5
        assert registry.total.skipped == 1
        assert registry.batches == 2
        registry.reset()
        assert registry.total.evaluations == 0
        assert registry.batches == 0
