"""EvalStats / StatsRegistry behaviour."""

from repro.perf.metrics import EvalStats, StatsRegistry, track


class TestEvalStats:
    def test_defaults(self):
        stats = EvalStats()
        assert stats.evaluations == 0
        assert stats.hit_rate == 0.0
        assert stats.evals_per_second == 0.0

    def test_hit_rate(self):
        stats = EvalStats(cache_hits=3, cache_misses=1)
        assert stats.hit_rate == 0.75

    def test_attempted(self):
        assert EvalStats(evaluations=5, skipped=2).attempted == 7

    def test_merge(self):
        total = EvalStats(evaluations=1, cache_hits=2, wall_seconds=0.5, jobs=1)
        total.merge(EvalStats(evaluations=3, cache_misses=4, skipped=1, jobs=8))
        assert total.evaluations == 4
        assert total.cache_hits == 2
        assert total.cache_misses == 4
        assert total.skipped == 1
        assert total.wall_seconds == 0.5
        assert total.jobs == 8

    def test_snapshot_and_delta(self):
        stats = EvalStats(evaluations=2, cache_hits=5, wall_seconds=0.25, jobs=2)
        before = stats.snapshot()
        stats.evaluations += 3
        stats.cache_hits += 1
        stats.cache_misses += 4
        stats.skipped += 2
        stats.wall_seconds += 0.5
        delta = stats.delta_since(before)
        assert delta.evaluations == 3
        assert delta.cache_hits == 1
        assert delta.cache_misses == 4
        assert delta.skipped == 2
        assert delta.wall_seconds == 0.5
        assert delta.jobs == 2
        # the snapshot is an independent copy, not a view
        assert before.evaluations == 2

    def test_delta_of_unchanged_stats_is_zero(self):
        stats = EvalStats(evaluations=7, cache_hits=9, wall_seconds=1.0)
        delta = stats.delta_since(stats.snapshot())
        assert delta.evaluations == 0
        assert delta.cache_hits == 0
        assert delta.wall_seconds == 0.0

    def test_track_accumulates_wall_time(self):
        stats = EvalStats()
        with track(stats):
            pass
        first = stats.wall_seconds
        assert first >= 0
        with track(stats):
            sum(range(1000))
        assert stats.wall_seconds >= first

    def test_evals_per_second(self):
        stats = EvalStats(evaluations=10, wall_seconds=2.0)
        assert stats.evals_per_second == 5.0

    def test_summary_mentions_counts(self):
        text = EvalStats(evaluations=7, skipped=2, jobs=4).summary()
        assert "7 evaluations" in text
        assert "2 skipped" in text
        assert "jobs=4" in text

    def test_as_dict_round_trip(self):
        stats = EvalStats(evaluations=2, cache_hits=1, cache_misses=1)
        payload = stats.as_dict()
        assert payload["evaluations"] == 2
        assert payload["hit_rate"] == 0.5


class TestStatsRegistry:
    def test_record_and_reset(self):
        registry = StatsRegistry()
        registry.record(EvalStats(evaluations=2))
        registry.record(EvalStats(evaluations=3, skipped=1))
        assert registry.total.evaluations == 5
        assert registry.total.skipped == 1
        assert registry.batches == 2
        registry.reset()
        assert registry.total.evaluations == 0
        assert registry.batches == 0

    def test_record_publishes_to_metrics_registry(self):
        from repro.obs.metrics import GLOBAL_METRICS
        from repro.perf.metrics import FaultStats

        registry = StatsRegistry()
        registry.reset()  # clears any repro_eval_/repro_fault_ families
        registry.record(EvalStats(evaluations=4, cache_hits=2, jobs=3))
        registry.record_faults(FaultStats(windows=2, kills=1, completed=5))
        snapshot = GLOBAL_METRICS.snapshot()
        assert (
            snapshot["repro_eval_evaluations_total"]["values"][0]["value"] == 4
        )
        assert snapshot["repro_eval_jobs"]["values"][0]["value"] == 3
        assert snapshot["repro_fault_kills_total"]["values"][0]["value"] == 1
        registry.reset()
        assert not any(
            name.startswith(("repro_eval_", "repro_fault_"))
            for name in GLOBAL_METRICS.families()
        )


class TestThreadSafety:
    def test_threaded_record_hammer_loses_no_updates(self):
        """Satellite regression: parallel publishers must not lose merges.

        The dataclass merge is a multi-field read-modify-write; without
        the registry lock, concurrent ``record`` calls drop updates.
        """
        import threading

        from repro.perf.metrics import FaultStats

        registry = StatsRegistry()
        workers, rounds = 8, 300
        barrier = threading.Barrier(workers)

        def hammer():
            barrier.wait()  # maximize interleaving
            for _ in range(rounds):
                registry.record(
                    EvalStats(evaluations=1, cache_hits=1, skipped=1, jobs=2)
                )
                registry.record_faults(FaultStats(windows=1, kills=1))

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = workers * rounds
        assert registry.total.evaluations == expected
        assert registry.total.cache_hits == expected
        assert registry.total.skipped == expected
        assert registry.batches == expected
        assert registry.faults.windows == expected
        assert registry.faults.kills == expected
        assert registry.fault_runs == expected

    def test_threaded_reset_record_race_stays_consistent(self):
        """reset() racing record() must never leave torn state."""
        import threading

        registry = StatsRegistry()
        stop = threading.Event()

        def recorder():
            while not stop.is_set():
                registry.record(EvalStats(evaluations=1, cache_hits=1))

        def resetter():
            for _ in range(50):
                registry.reset()

        threads = [threading.Thread(target=recorder) for _ in range(4)]
        threads.append(threading.Thread(target=resetter))
        for thread in threads:
            thread.start()
        threads[-1].join()
        stop.set()
        for thread in threads[:-1]:
            thread.join()
        # invariant under any interleaving: the two counters moved in
        # lockstep inside the lock, so they can never disagree
        assert registry.total.evaluations == registry.total.cache_hits
        registry.reset()


class TestStatsRegistryDumpMerge:
    """Cross-process shipping of eval/fault counters."""

    def _populated(self):
        registry = StatsRegistry()
        registry.record(EvalStats(evaluations=2, cache_hits=5, jobs=4))
        registry.record(EvalStats(evaluations=1, cache_misses=3))
        from repro.perf.metrics import FaultStats

        registry.record_faults(FaultStats(windows=2, kills=1, shed=1, completed=9))
        return registry

    def test_dump_round_trips_through_pickle(self):
        import pickle

        source = self._populated()
        blob = pickle.dumps(source.dump(), protocol=pickle.HIGHEST_PROTOCOL)
        target = StatsRegistry()
        target.merge_dump(pickle.loads(blob))
        assert target.total.as_dict() == source.total.as_dict()
        assert target.batches == source.batches
        assert target.faults.as_dict() == source.faults.as_dict()
        assert target.fault_runs == source.fault_runs

    def test_merge_dump_folds_counters(self):
        parent = self._populated()
        worker = self._populated()
        parent.merge_dump(worker.dump())
        assert parent.total.evaluations == 6
        assert parent.total.cache_hits == 10
        assert parent.batches == 4
        assert parent.faults.windows == 4
        assert parent.fault_runs == 2

    def test_dump_is_a_snapshot_not_a_view(self):
        registry = self._populated()
        dump = registry.dump()
        registry.record(EvalStats(evaluations=100))
        assert dump["total"].evaluations == 3
        assert dump["batches"] == 2

    def test_merge_dump_skips_metric_publication(self):
        """Merging a worker dump must not re-publish to GLOBAL_METRICS.

        The worker's own metrics dump is merged separately (through
        ``MetricsRegistry.merge_dump``); publishing here too would
        double-count every repro_eval_* series.
        """
        from repro.obs.metrics import GLOBAL_METRICS

        GLOBAL_METRICS.reset("repro_eval_")
        worker = StatsRegistry()
        worker.record(EvalStats(evaluations=4, cache_hits=7))  # publishes once
        parent = StatsRegistry()
        parent.merge_dump(worker.dump())  # must not publish again
        snapshot = GLOBAL_METRICS.snapshot()
        hits = snapshot["repro_eval_cache_hits_total"]["values"][0]["value"]
        assert hits == 7
        assert parent.total.cache_hits == 7
