"""The evaluation engine wired through DSE, sweeps, sensitivity, serving.

The contract under test: parallel results are bit-identical to serial on
the same candidate list, skipped/infeasible candidates are reported
instead of silently swallowed, and the cache counters reflect the work.
"""

import dataclasses

import pytest

from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.core.sensitivity import SensitivityAnalysis
from repro.core.sweep import sweep
from repro.hw.specs import VCK5000
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.perf.cache import EvalCache
from repro.workloads.gemm import GemmShape

WORKLOAD = GemmShape(1024, 1024, 1024)


class TestDseParallel:
    def test_parallel_identical_to_serial(self):
        serial = DesignSpaceExplorer(
            Precision.FP32, max_aies=128, cache=EvalCache()
        ).explore(WORKLOAD)
        parallel = DesignSpaceExplorer(
            Precision.FP32, max_aies=128, jobs=4, cache=EvalCache()
        ).explore(WORKLOAD)
        assert list(serial) == list(parallel)
        assert [repr(p.seconds) for p in serial] == [
            repr(p.seconds) for p in parallel
        ]

    def test_result_is_still_a_list(self):
        result = DesignSpaceExplorer(
            Precision.FP32, max_aies=64, cache=EvalCache()
        ).explore(WORKLOAD, top=3)
        assert isinstance(result, DseResult)
        assert isinstance(result, list)
        assert len(result) == 3
        assert result[0].seconds <= result[1].seconds

    def test_stats_report_evaluations(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64, cache=EvalCache())
        result = explorer.explore(WORKLOAD)
        assert result.evaluated == len(explorer.candidates())
        assert result.skipped == 0
        assert result.stats.wall_seconds > 0

    def test_infeasible_candidates_counted_not_swallowed(self):
        # a starved PL memory budget makes large-native candidates
        # untileable; the result must say so rather than hide it
        starved = dataclasses.replace(VCK5000, pl_usable_fraction=0.01)
        result = DesignSpaceExplorer(
            Precision.FP32, device=starved, max_aies=384, cache=EvalCache()
        ).explore(WORKLOAD)
        assert result.skipped > 0
        assert result.evaluated + result.skipped == result.stats.attempted

    def test_explore_jobs_override(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64, cache=EvalCache())
        assert list(explorer.explore(WORKLOAD)) == list(
            explorer.explore(WORKLOAD, jobs=4)
        )

    def test_repeat_exploration_hits_cache(self):
        cache = EvalCache()
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64, cache=cache)
        cold = explorer.explore(WORKLOAD)
        assert cold.stats.cache_hits == 0
        warm = explorer.explore(WORKLOAD)
        assert warm.stats.cache_hits >= warm.evaluated
        assert list(cold) == list(warm)


class TestSweepParallel:
    AXES = {"m": [256, 512, 1024], "n": [256, 512]}

    @staticmethod
    def _evaluate(m, n):
        if m == n == 256:
            return None  # exercise the skip path
        return {"area": m * n}

    def test_parallel_identical_to_serial(self):
        serial = sweep(self.AXES, self._evaluate)
        parallel = sweep(self.AXES, self._evaluate, jobs=4)
        assert serial.records == parallel.records

    def test_stats_count_skips(self):
        result = sweep(self.AXES, self._evaluate, jobs=2)
        assert result.stats.evaluations == 5
        assert result.stats.skipped == 1
        assert result.stats.jobs == 2


class TestSensitivityParallel:
    def test_parallel_identical_to_serial(self):
        design = CharmDesign(config_by_name("C6"))
        serial = SensitivityAnalysis(design, WORKLOAD, cache=EvalCache())
        parallel = SensitivityAnalysis(design, WORKLOAD, jobs=4, cache=EvalCache())
        counts = [48, 96, 192]
        assert [p.seconds for p in serial.plio_count(counts)] == [
            p.seconds for p in parallel.plio_count(counts)
        ]
        freqs = [0.8e9, 1.0e9, 1.25e9]
        assert [p.seconds for p in serial.aie_frequency(freqs)] == [
            p.seconds for p in parallel.aie_frequency(freqs)
        ]

    def test_point_order_matches_request_order(self):
        design = CharmDesign(config_by_name("C6"))
        analysis = SensitivityAnalysis(design, WORKLOAD, jobs=4, cache=EvalCache())
        fractions = [0.4, 0.1, 0.2]
        assert [p.value for p in analysis.pl_memory_fraction(fractions)] == fractions


class TestServingPrewarm:
    @pytest.fixture
    def partition(self):
        from repro.core.multi_acc import AcceleratorPartition

        return AcceleratorPartition([config_by_name("C1"), config_by_name("C2")])

    def test_prewarm_then_run_all_hits(self, partition):
        from repro.sim.serving import ServingSimulator, generate_trace

        shapes = [GemmShape(512, 512, 512), GemmShape(1024, 1024, 1024)]
        simulator = ServingSimulator(partition)
        warmed = simulator.prewarm(shapes, jobs=2)
        assert warmed == len(shapes) * len(partition.designs)
        trace = generate_trace(shapes, num_requests=20, mean_interarrival=0.01)
        simulator.run(trace)
        assert simulator.stats.cache_hits > 0
        assert simulator.stats.cache_misses == 0  # everything prewarmed

    def test_prewarm_matches_lazy_results(self, partition):
        from repro.sim.serving import ServingSimulator, generate_trace

        shapes = [GemmShape(512, 512, 512)]
        trace = generate_trace(shapes, num_requests=10, mean_interarrival=0.01)
        lazy = ServingSimulator(partition).run(trace)
        warmed_sim = ServingSimulator(partition)
        warmed_sim.prewarm(shapes, jobs=2)
        warmed = warmed_sim.run(trace)
        assert [c.finish for c in lazy.completed] == [
            c.finish for c in warmed.completed
        ]
