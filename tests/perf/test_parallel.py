"""parallel_map: determinism, fallback and jobs resolution."""

import threading

import pytest

from repro.perf.parallel import default_chunksize, parallel_map, resolve_jobs


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_one_is_serial(self):
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_none_means_cpu_count(self):
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunking:
    def test_covers_all_items(self):
        size = default_chunksize(100, 4)
        assert 1 <= size <= 100

    def test_small_input(self):
        assert default_chunksize(1, 8) == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(lambda x: x * 2, range(10), jobs=1) == [
            x * 2 for x in range(10)
        ]

    def test_parallel_matches_serial_order(self):
        items = list(range(97))  # not a multiple of any chunk size
        serial = [x**2 for x in items]
        assert parallel_map(lambda x: x**2, items, jobs=4) == serial
        assert parallel_map(lambda x: x**2, items, jobs=4, chunksize=1) == serial

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []

    def test_single_item_skips_pool(self):
        assert parallel_map(lambda x: x + 1, [41], jobs=8) == [42]

    def test_uses_multiple_workers(self):
        seen = set()
        lock = threading.Lock()

        def record(x):
            with lock:
                seen.add(threading.current_thread().name)
            return x

        parallel_map(record, range(64), jobs=4, chunksize=1)
        assert len(seen) >= 1  # at least dispatched through the pool

    def test_flaky_worker_degrades_to_serial_without_losing_items(self):
        """A transient failure retries the chunk serially; no item lost."""
        failed_once = set()
        lock = threading.Lock()

        def flaky(x):
            with lock:
                first_attempt = x not in failed_once
                failed_once.add(x)
            if x % 7 == 0 and first_attempt:
                raise RuntimeError("transient worker failure")
            return x * 3

        items = list(range(50))
        assert parallel_map(flaky, items, jobs=4) == [x * 3 for x in items]

    def test_deterministic_error_propagates_like_serial(self):
        def bad(x):
            if x == 13:
                raise ValueError("always fails")
            return x

        with pytest.raises(ValueError, match="always fails"):
            parallel_map(bad, range(20), jobs=4)
