"""Property tests: ``QuantileSketch.merge`` across k-way shard merges.

The sharded serving layer's percentile contract rests on one claim: a
sketch merged from k disjoint shard streams answers quantile queries
within the documented relative-error bound *of the union stream*, for
any k and any split of the data — not just the pairwise case the unit
tests pin.  These properties drive that with hypothesis-generated
streams and splits.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.streaming import QuantileSketch

# values comfortably above the sketch's underflow floor (1e-9) so every
# sample lands in a real bucket and the relative bound applies
values_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

streams_strategy = st.lists(values_strategy, min_size=2, max_size=6)

PERCENTILES = (10.0, 50.0, 90.0, 99.0, 100.0)


def _exact_quantile(values: np.ndarray, percentile: float) -> float:
    """The rank semantics the sketch documents: min(n, ceil(p/100*n))."""
    ordered = np.sort(values)
    rank = min(len(ordered), math.ceil(percentile / 100 * len(ordered)))
    return float(ordered[rank - 1])


def _merge_streams(streams, relative_error):
    merged = QuantileSketch(relative_error=relative_error)
    merged.add_many(np.asarray(streams[0], dtype=np.float64))
    for stream in streams[1:]:
        shard = QuantileSketch(relative_error=relative_error)
        shard.add_many(np.asarray(stream, dtype=np.float64))
        merged.merge(shard)
    return merged


class TestKWayMergeBound:
    @given(streams_strategy, st.sampled_from([0.01, 0.05]))
    @settings(max_examples=120, deadline=None)
    def test_merged_quantiles_within_bound_of_union(self, streams, error):
        merged = _merge_streams(streams, error)
        union = np.concatenate([np.asarray(s, dtype=np.float64) for s in streams])
        assert merged.count == len(union)
        for percentile in PERCENTILES:
            exact = _exact_quantile(union, percentile)
            estimate = merged.quantile(percentile)
            assert abs(estimate - exact) <= error * exact + 1e-12

    @given(streams_strategy)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_bucket_exact(self, streams):
        """A k-way merge equals one sketch fed the whole union.

        Bucket keys are elementwise functions of the values, so merging
        shard sketches must reproduce the union sketch's internal state
        exactly — count, sum, extremes, and every bucket count.  This is
        the stronger invariant behind shard-count independence: any
        split of the stream merges to the same state.
        """
        merged = _merge_streams(streams, 0.01)
        union = np.concatenate([np.asarray(s, dtype=np.float64) for s in streams])
        single = QuantileSketch(relative_error=0.01)
        single.add_many(union)
        assert merged._counts == single._counts
        assert merged._underflow == single._underflow
        assert merged.count == single.count
        assert merged.min == single.min
        assert merged.max == single.max
        assert merged.sum == pytest.approx(single.sum, rel=1e-12)

    @given(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
            min_size=6,
            max_size=80,
        ),
        st.integers(2, 8),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_partition_of_one_stream_merges_identically(
        self, values, shards, seed
    ):
        """Shard-count and split-point independence for one fixed stream."""
        arr = np.asarray(values, dtype=np.float64)
        rng = np.random.default_rng(seed)
        cuts = np.sort(rng.integers(0, len(arr) + 1, size=shards - 1))
        pieces = [p for p in np.split(arr, cuts) if p.size]
        merged = _merge_streams([p.tolist() for p in pieces], 0.01)
        single = QuantileSketch(relative_error=0.01)
        single.add_many(arr)
        assert merged._counts == single._counts
        for percentile in PERCENTILES:
            assert merged.quantile(percentile) == single.quantile(percentile)
