"""Property-based tests: physical-placement invariants."""

from hypothesis import given, settings, strategies as st

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.mapping.placement import CharmPlacer

config_names = st.sampled_from([c.name for c in ALL_CONFIGS if c.num_aies <= 64])


class TestPlacementProperties:
    @given(config_names, st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_tiles_never_shared(self, name, replicas):
        placer = CharmPlacer()
        design = CharmDesign(config_by_name(name))
        placements = placer.place_replicas(design, count=replicas)
        tiles = [t for p in placements for pack in p.packs for t in pack.tiles]
        assert len(tiles) == len(set(tiles))
        assert len(tiles) == replicas * design.config.num_aies

    @given(config_names)
    @settings(max_examples=15, deadline=None)
    def test_chains_follow_cascade(self, name):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name(name)))
        for pack in placement.packs:
            for a, b in zip(pack.tiles, pack.tiles[1:]):
                assert placer.array.tiles[a].cascade_successor() == b

    @given(config_names)
    @settings(max_examples=15, deadline=None)
    def test_fill_until_exhaustion_respects_budgets(self, name):
        placer = CharmPlacer()
        design = CharmDesign(config_by_name(name))
        placements = placer.place_replicas(design)
        used_aies = sum(p.tiles_used for p in placements)
        assert used_aies <= placer.device.num_aies
        assert placer.plio_usage() <= placer.device.usable_plios
        # greedy fill leaves no room for one more replica
        expected_max = min(
            placer.device.num_aies // design.config.num_aies,
            placer.device.usable_plios // design.config.num_plios,
        )
        assert len(placements) <= expected_max
        assert len(placements) >= expected_max - 1  # snake fragmentation slack
