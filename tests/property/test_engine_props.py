"""Property-based tests: pipeline-engine scheduling invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import PipelineSimulator, PipelineStage

service_times = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=5
)
slot_lists = st.lists(st.integers(1, 4), min_size=1, max_size=5)
item_counts = st.integers(0, 30)


@st.composite
def pipelines(draw):
    times = draw(service_times)
    slots = draw(st.lists(st.integers(1, 4), min_size=len(times), max_size=len(times)))
    stages = [
        PipelineStage(f"s{i}", (lambda v: (lambda t: v))(v), slots=slot)
        for i, (v, slot) in enumerate(zip(times, slots))
    ]
    return PipelineSimulator(stages), times


class TestEngineInvariants:
    @given(pipelines(), item_counts)
    @settings(max_examples=80)
    def test_makespan_at_least_busiest_stage(self, pipe_and_times, n):
        pipe, times = pipe_and_times
        result = pipe.run(n)
        for i, service in enumerate(times):
            assert result.makespan >= result.stage_busy(i) - 1e-9
            assert result.stage_busy(i) >= n * service - 1e-6

    @given(pipelines(), item_counts)
    @settings(max_examples=80)
    def test_makespan_at_most_fully_serial(self, pipe_and_times, n):
        pipe, times = pipe_and_times
        result = pipe.run(n)
        assert result.makespan <= n * sum(times) + 1e-6

    @given(pipelines(), item_counts)
    @settings(max_examples=80)
    def test_causality(self, pipe_and_times, n):
        pipe, _ = pipe_and_times
        result = pipe.run(n)
        for s in range(1, len(result.stage_names)):
            for t in range(n):
                assert result.start_times[s][t] >= result.end_times[s - 1][t] - 1e-9

    @given(pipelines(), st.integers(1, 20))
    @settings(max_examples=60)
    def test_in_order_processing(self, pipe_and_times, n):
        pipe, _ = pipe_and_times
        result = pipe.run(n)
        for stage_starts in result.start_times:
            assert all(
                b >= a - 1e-9 for a, b in zip(stage_starts, stage_starts[1:])
            )

    @given(service_times, slot_lists, st.integers(0, 700))
    @settings(max_examples=60)
    def test_vectorized_bit_identical_to_exact(self, times, slots, n):
        """Constant-service pipelines: the vectorized path must reproduce
        the exact event loop to the last bit, across the warmup boundary."""
        stages = [
            PipelineStage(f"s{i}", v, slots=slot)
            for i, (v, slot) in enumerate(zip(times, slots))
        ]
        pipe = PipelineSimulator(stages)
        exact = pipe.run(n, vectorize=False)
        fast = pipe.run(n, vectorize=True)
        assert fast.end_times == exact.end_times
        assert fast.start_times == exact.start_times
        assert fast.makespan == exact.makespan

    @given(service_times, st.integers(1, 20))
    @settings(max_examples=60)
    def test_deeper_buffers_never_slower(self, times, n):
        def build(slots):
            return PipelineSimulator(
                [
                    PipelineStage(f"s{i}", (lambda v: (lambda t: v))(v), slots=slots)
                    for i, v in enumerate(times)
                ]
            )

        shallow = build(1).run(n).makespan
        deep = build(3).run(n).makespan
        assert deep <= shallow + 1e-9
