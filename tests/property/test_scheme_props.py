"""Property-based tests: PLIO scheme and switching invariants."""

from hypothesis import given, settings, strategies as st

from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import make_scheme
from repro.mapping.switching import SwitchingKind, serialization_factor

chunks = st.integers(1, 64)
fanouts = st.integers(1, 16)
plio_counts = st.integers(1, 64)


class TestSerializationProperties:
    @given(chunks, fanouts, plio_counts)
    def test_more_plios_never_serialise_more(self, c, f, p):
        for kind in (SwitchingKind.PACKET, SwitchingKind.HYBRID):
            assert serialization_factor(kind, c, f, p + 1) <= serialization_factor(
                kind, c, f, p
            )

    @given(chunks, fanouts, plio_counts)
    def test_packet_at_least_hybrid(self, c, f, p):
        packet = serialization_factor(SwitchingKind.PACKET, c, f, p)
        hybrid = serialization_factor(SwitchingKind.HYBRID, c, f, p)
        assert packet >= hybrid

    @given(chunks, fanouts)
    def test_hybrid_with_enough_plios_is_parallel(self, c, f):
        assert serialization_factor(SwitchingKind.HYBRID, c, f, c) == 1

    @given(chunks, fanouts, plio_counts)
    def test_serialization_covers_all_deliveries(self, c, f, p):
        """plios * per-plio serialization must cover every delivery."""
        factor = serialization_factor(SwitchingKind.PACKET, c, f, p)
        assert factor * p >= c * f

    @given(chunks, fanouts)
    def test_unit_fanout_packet_equals_hybrid(self, c, p):
        assert serialization_factor(
            SwitchingKind.PACKET, c, 1, p
        ) == serialization_factor(SwitchingKind.HYBRID, c, 1, p)


class TestSchemeProperties:
    @given(
        st.integers(1, 16),
        st.integers(1, 16),
        st.integers(1, 4),
        st.sampled_from([SwitchingKind.PACKET, SwitchingKind.HYBRID]),
    )
    @settings(max_examples=50)
    def test_invocation_period_at_least_compute(self, pa, pb, pc, kind):
        config = config_by_name("C1")
        scheme = make_scheme(config, pa, pb, pc, kind, kind, kind)
        assert scheme.invocation_cycles() >= scheme.compute_cycles()

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(1, 4))
    @settings(max_examples=50)
    def test_utilization_in_unit_interval(self, pa, pb, pc):
        config = config_by_name("C1")
        hybrid = SwitchingKind.HYBRID
        scheme = make_scheme(config, pa, pb, pc, hybrid, hybrid, hybrid)
        assert 0 < scheme.array_utilization() <= 1.0

    @given(st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=40)
    def test_more_b_plios_never_slower(self, pb, extra):
        config = config_by_name("C1")
        hybrid = SwitchingKind.HYBRID
        base = make_scheme(config, 2, pb, 1, hybrid, hybrid, hybrid)
        more = make_scheme(config, 2, pb + extra, 1, hybrid, hybrid, hybrid)
        assert more.invocation_cycles() <= base.invocation_cycles()
