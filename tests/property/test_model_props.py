"""Property-based tests: analytical-model and kernel-model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytical_model import AnalyticalModel
from repro.kernels.kernel_timing import (
    compute_cycles,
    ideal_compute_cycles,
    kernel_timing,
)
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS
from repro.workloads.gemm import GemmShape

kernel_dims = st.sampled_from([8, 16, 32, 64, 128])
precisions = st.sampled_from(list(Precision))
styles = st.sampled_from(list(KernelStyle))
config_names = st.sampled_from([c.name for c in ALL_CONFIGS])


@st.composite
def kernel_shapes(draw):
    return GemmShape(draw(kernel_dims), draw(kernel_dims), draw(kernel_dims))


class TestKernelModelProperties:
    @given(kernel_shapes(), precisions, styles)
    def test_compute_never_below_ideal(self, shape, precision, style):
        assert compute_cycles(shape, precision, style) >= ideal_compute_cycles(
            shape, precision
        )

    @given(kernel_shapes(), precisions)
    def test_api_never_faster_than_intrinsic(self, shape, precision):
        intr = compute_cycles(shape, precision, KernelStyle.INTRINSIC)
        api = compute_cycles(shape, precision, KernelStyle.API)
        assert api >= intr

    @given(kernel_shapes(), precisions)
    def test_efficiency_in_unit_interval(self, shape, precision):
        timing = kernel_timing(shape, precision)
        assert 0 < timing.efficiency <= 1.0

    @given(kernel_shapes(), precisions)
    def test_double_buffering_never_slower(self, shape, precision):
        db = kernel_timing(shape, precision, double_buffered=True)
        sb = kernel_timing(shape, precision, double_buffered=False)
        assert db.total <= sb.total

    @given(kernel_shapes())
    def test_int8_compute_faster_than_fp32(self, shape):
        assert compute_cycles(shape, Precision.INT8) < compute_cycles(
            shape, Precision.FP32
        )

    @given(kernel_shapes(), precisions, st.integers(1, 8))
    def test_more_plios_never_slower(self, shape, precision, plios):
        base = kernel_timing(shape, precision, plios_a=1, plios_b=1, plios_c=1)
        more = kernel_timing(shape, precision, plios_a=plios, plios_b=plios, plios_c=plios)
        assert more.total <= base.total


@st.composite
def workloads(draw):
    scale = st.integers(min_value=1, max_value=8)
    return GemmShape(
        256 * draw(scale), 256 * draw(scale), 256 * draw(scale)
    )


class TestAnalyticalModelProperties:
    @given(config_names, workloads())
    @settings(max_examples=40, deadline=None)
    def test_time_positive_and_finite(self, name, workload):
        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name(name))
        estimate = AnalyticalModel(design).estimate(workload)
        assert 0 < estimate.total_seconds < 1e4

    @given(config_names, workloads())
    @settings(max_examples=40, deadline=None)
    def test_efficiency_below_one(self, name, workload):
        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name(name))
        estimate = AnalyticalModel(design).estimate(workload)
        assert estimate.efficiency < 1.0

    @given(config_names, workloads(), st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_bigger_workload_takes_longer(self, name, workload, factor):
        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name(name))
        model = AnalyticalModel(design)
        small = model.estimate(workload).total_seconds
        big = model.estimate(workload.scaled(factor, factor, factor)).total_seconds
        assert big > small

    @given(config_names, workloads())
    @settings(max_examples=30, deadline=None)
    def test_single_buffering_never_faster_same_plan(self, name, workload):
        import dataclasses

        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name(name))
        plan = design.tile_plan(workload)
        double = AnalyticalModel(design).estimate(workload, plan).total_seconds
        single_plan = dataclasses.replace(plan, double_buffered=False)
        single = AnalyticalModel(design.with_single_buffering()).estimate(
            workload, single_plan
        ).total_seconds
        assert single >= double

    @given(config_names, workloads())
    @settings(max_examples=25, deadline=None)
    def test_model_tracks_simulated_hw_within_5pct(self, name, workload):
        """The Section V-A accuracy claim, as a property over random
        (config, workload) pairs at the paper's measured scale (>=1024
        per dimension); sub-native workloads are fill/drain-dominated
        and out of the claim's scope."""
        from hypothesis import assume

        from repro.mapping.configs import config_by_name
        from repro.sim.hwsim import HwSimulator

        assume(min(workload.m, workload.k, workload.n) >= 1024)
        design = CharmDesign(config_by_name(name))
        _, error = HwSimulator(design).compare_with_model(workload)
        assert abs(error) <= 0.05

    @given(config_names, workloads())
    @settings(max_examples=30, deadline=None)
    def test_breakdown_phases_bounded_by_total(self, name, workload):
        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name(name))
        b = AnalyticalModel(design).estimate(workload).breakdown
        # each phase overlaps the others, so each is at most the total
        tolerance = 1.0001
        assert b.load_a_seconds + b.load_b_seconds <= b.total_seconds * tolerance
        assert b.aie_seconds <= b.total_seconds * tolerance
        assert b.store_c_seconds <= b.total_seconds * tolerance
