"""Property-based tests: tiling invariants."""

from hypothesis import given, settings, strategies as st

from repro.kernels.precision import Precision
from repro.mapping.tiling import TilePlan
from repro.workloads.gemm import GemmShape

dims = st.integers(min_value=1, max_value=4096)
small_dims = st.integers(min_value=1, max_value=64)
multiples = st.integers(min_value=1, max_value=8)


@st.composite
def shapes(draw, dim=dims):
    return GemmShape(draw(dim), draw(dim), draw(dim))


@st.composite
def plans(draw):
    native = GemmShape(
        32 * draw(st.integers(1, 8)),
        32 * draw(st.integers(1, 8)),
        32 * draw(st.integers(1, 8)),
    )
    workload = draw(shapes())
    mult = (draw(multiples), draw(multiples), draw(multiples))
    return TilePlan(workload, native, Precision.FP32, mult)


class TestPaddingProperties:
    @given(shapes(), shapes(small_dims))
    def test_padding_covers_workload(self, workload, unit):
        padded = workload.padded_to(unit)
        assert padded.m >= workload.m
        assert padded.k >= workload.k
        assert padded.n >= workload.n

    @given(shapes(), shapes(small_dims))
    def test_padding_is_multiple(self, workload, unit):
        assert workload.padded_to(unit).is_multiple_of(unit)

    @given(shapes(), shapes(small_dims))
    def test_padding_idempotent(self, workload, unit):
        once = workload.padded_to(unit)
        assert once.padded_to(unit) == once

    @given(shapes(), shapes(small_dims))
    def test_padding_minimal(self, workload, unit):
        """Shrinking any padded dimension by one unit would under-cover."""
        padded = workload.padded_to(unit)
        assert padded.m - unit.m < workload.m
        assert padded.k - unit.k < workload.k
        assert padded.n - unit.n < workload.n

    @given(shapes(), shapes(small_dims))
    def test_tile_counts_cover(self, workload, tile):
        tm, tk, tn = workload.tile_counts(tile)
        assert tm * tile.m >= workload.m
        assert tk * tile.k >= workload.k
        assert tn * tile.n >= workload.n
        assert (tm - 1) * tile.m < workload.m


class TestTrafficProperties:
    @given(plans())
    @settings(max_examples=60)
    def test_traffic_at_least_minimal(self, plan):
        traffic = plan.traffic()
        assert traffic.total >= traffic.minimal
        assert traffic.tiling_overhead >= 1.0

    @given(plans())
    @settings(max_examples=60)
    def test_c_written_exactly_once(self, plan):
        assert plan.traffic().write_c == plan.padded.bytes_c(4)

    @given(plans())
    @settings(max_examples=60)
    def test_effective_oi_never_exceeds_ideal(self, plan):
        ideal = plan.padded.flops / plan.padded.total_io_bytes(4)
        assert plan.effective_operational_intensity() <= ideal * 1.0001

    @given(plans())
    @settings(max_examples=60)
    def test_tile_accounting_consistent(self, plan):
        # DRAM tiles times PL tiles per DRAM tile covers at least every
        # native tile of the padded workload
        covered = plan.num_dram_tiles * plan.pl_tiles_per_dram_tile
        assert covered >= plan.total_native_tiles

    @given(plans())
    @settings(max_examples=60)
    def test_footprint_positive_and_linear_in_buffering(self, plan):
        import dataclasses

        single = dataclasses.replace(plan, double_buffered=False)
        assert plan.pl_footprint_bytes() == 2 * single.pl_footprint_bytes()


class TestGrowingTilesNeverIncreaseTraffic:
    @given(plans(), st.integers(1, 4))
    @settings(max_examples=60)
    def test_larger_n_multiple(self, plan, extra):
        import dataclasses

        am, ak, an = plan.multiples
        bigger = dataclasses.replace(plan, multiples=(am, ak, an * extra))
        assert bigger.traffic().read_a <= plan.traffic().read_a

    @given(plans(), st.integers(1, 4))
    @settings(max_examples=60)
    def test_larger_m_multiple(self, plan, extra):
        import dataclasses

        am, ak, an = plan.multiples
        bigger = dataclasses.replace(plan, multiples=(am * extra, ak, an))
        assert bigger.traffic().read_b <= plan.traffic().read_b
