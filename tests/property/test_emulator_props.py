"""Property-based tests: the kernel emulator vs numpy and vs the model."""

from hypothesis import given, settings, strategies as st

from repro.kernels.emulator import AieKernelEmulator
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.kernel_timing import compute_cycles
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

# keep emulated shapes small: the emulator is issue-accurate, not fast
small_pow2 = st.sampled_from([8, 16, 32])
precisions = st.sampled_from([Precision.FP32, Precision.INT8, Precision.INT16])


@st.composite
def emulable(draw):
    shape = GemmShape(draw(small_pow2), draw(small_pow2), draw(small_pow2))
    precision = draw(precisions)
    return SingleAieGemmKernel(shape, precision)


class TestEmulatorProperties:
    @given(emulable(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_always_matches_numpy(self, kernel, seed):
        emulation, reference = AieKernelEmulator(kernel).run_random(seed=seed)
        assert emulation.matches(reference)

    @given(emulable())
    @settings(max_examples=30, deadline=None)
    def test_cycles_agree_with_model_on_aligned_shapes(self, kernel):
        """For K a multiple of the datapath's reduction step, the
        executed schedule and the closed-form model agree exactly."""
        if kernel.shape.k % kernel.precision.k_per_cycle != 0:
            return
        emulation, _ = AieKernelEmulator(kernel).run_random()
        model = compute_cycles(kernel.shape, kernel.precision, kernel.style)
        assert emulation.cycles <= model * 1.01
        assert emulation.cycles >= model * 0.99

    @given(emulable())
    @settings(max_examples=30, deadline=None)
    def test_issue_accounting(self, kernel):
        emulation, _ = AieKernelEmulator(kernel).run_random()
        lanes = kernel.precision.lanes
        expected_blocks = -(-kernel.shape.m * kernel.shape.n // lanes)
        assert emulation.drains == expected_blocks
        assert emulation.vector_issues >= expected_blocks
