"""Property-based tests: roofline attainability invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.roofline import Roofline
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

ois = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)
dims = st.integers(min_value=1, max_value=16384)


class TestAttainability:
    @given(ois)
    def test_attainable_never_exceeds_peak(self, oi):
        roofline = Roofline(Precision.INT8)
        assert roofline.attainable(oi) <= 128e12 * 1.0001

    @given(ois)
    def test_attainable_never_exceeds_bandwidth_line(self, oi):
        roofline = Roofline(Precision.INT8)
        assert roofline.attainable(oi) <= oi * roofline.dram_bandwidth() * 1.0001

    @given(ois, ois)
    def test_attainable_monotone_in_oi(self, a, b):
        roofline = Roofline(Precision.INT8)
        low, high = min(a, b), max(a, b)
        assert roofline.attainable(low) <= roofline.attainable(high) * 1.0001

    @given(st.integers(1, 400))
    def test_ceiling_scales_with_aies(self, aies):
        roofline = Roofline(Precision.INT8)
        peak = roofline.device.peak_ops(Precision.INT8, aies)
        assert peak == aies * 128 * 1.25e9 * 2

    @given(dims, dims, dims)
    @settings(max_examples=60)
    def test_point_on_or_below_roof(self, m, k, n):
        roofline = Roofline(Precision.INT8)
        point = roofline.point("w", GemmShape(m, k, n))
        assert point.attainable_ops <= 128e12 * 1.0001
        assert point.operational_intensity > 0

    @given(dims, dims, dims)
    @settings(max_examples=60)
    def test_compute_bound_iff_right_of_ridge(self, m, k, n):
        roofline = Roofline(Precision.INT8)
        point = roofline.point("w", GemmShape(m, k, n))
        ridge = 128e12 / roofline.dram_bandwidth()
        assert point.compute_bound == (point.operational_intensity >= ridge)
