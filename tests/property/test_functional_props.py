"""Property-based tests: the tiled dataflow always computes A @ B."""

from hypothesis import given, settings, strategies as st

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.sim.functional import FunctionalGemm
from repro.workloads.gemm import GemmShape


@st.composite
def arbitrary_workloads(draw):
    """Workloads deliberately misaligned with native sizes."""
    return GemmShape(
        draw(st.integers(1, 200)),
        draw(st.integers(1, 300)),
        draw(st.integers(1, 200)),
    )


class TestFunctionalEquivalence:
    @given(arbitrary_workloads(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_fp32_matches_numpy(self, workload, seed):
        design = CharmDesign(config_by_name("C1"))
        result = FunctionalGemm(design, seed=seed).run(workload)
        assert result.correct, (workload, result.max_abs_error)

    @given(arbitrary_workloads(), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_int8_exact_match(self, workload, seed):
        design = CharmDesign(config_by_name("C7"))
        result = FunctionalGemm(design, seed=seed).run(workload)
        assert result.max_abs_error == 0.0, workload

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_native_multiples_exact_invocation_count(self, sm, sk, sn):
        design = CharmDesign(config_by_name("C1"))
        workload = design.native_size.scaled(sm, sk, sn)
        plan = design.tile_plan(workload)
        result = FunctionalGemm(design, seed=0).run(workload, plan=plan)
        assert result.correct
        assert result.kernel_invocations == plan.total_native_tiles
