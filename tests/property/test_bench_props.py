"""Property-based tests: bench noise determinism and CI statistics.

The ISSUE's statistical contracts, exercised over arbitrary seeds and
amplitudes rather than hand-picked cases: noise streams are pure
functions of (seed, amplitude) with documented bounds, t-intervals are
symmetric and ordered, and bootstrap intervals stay inside the sample
range.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench.noise import (
    ClockVariabilityNoise,
    DramJitterNoise,
    ThermalDeratingNoise,
    combined_clock_fraction,
    combined_service_factors,
    combined_stage_factor,
)
from repro.bench.stats import bootstrap_interval, summarize, t_critical
from repro.sim.streaming import splitmix_uniforms

seeds = st.integers(min_value=0, max_value=2**63 - 1)
amplitudes = st.floats(min_value=0.001, max_value=0.9, allow_nan=False)
confidences = st.sampled_from([0.90, 0.95, 0.99])


def samples(min_size=2, max_size=40):
    return st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=min_size, max_size=max_size,
    )


class TestNoiseProperties:
    @given(seeds, amplitudes)
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_stream(self, seed, amplitude):
        for model in (DramJitterNoise(amplitude), ThermalDeratingNoise(amplitude),
                      ClockVariabilityNoise(min(amplitude, 0.9))):
            assert np.array_equal(
                model.service_factors(seed, 3, 5),
                model.service_factors(seed, 3, 5),
            )
            assert model.clock_fraction(seed) == model.clock_fraction(seed)

    @given(seeds, amplitudes)
    @settings(max_examples=50, deadline=None)
    def test_factors_within_documented_bounds(self, seed, amplitude):
        dram = DramJitterNoise(amplitude).service_factors(seed, 4, 4)
        assert np.all(dram >= 1.0) and np.all(dram <= 1.0 + amplitude)
        thermal = ThermalDeratingNoise(amplitude).service_factors(seed, 4, 4)
        assert np.all(thermal >= 1.0) and np.all(thermal <= 1.0 + amplitude)
        fraction = ClockVariabilityNoise(min(amplitude, 0.9)).clock_fraction(seed)
        assert 1.0 - min(amplitude, 0.9) <= fraction <= 1.0

    @given(seeds, amplitudes, amplitudes)
    @settings(max_examples=50, deadline=None)
    def test_composition_is_elementwise_product(self, seed, a, b):
        models = [DramJitterNoise(a), ThermalDeratingNoise(b)]
        combined = combined_service_factors(models, seed, 2, 3)
        product = (models[0].service_factors(seed, 2, 3)
                   * models[1].service_factors(seed, 2, 3))
        assert np.allclose(combined, product)
        assert combined_stage_factor(models, seed) >= 1.0
        assert combined_clock_fraction(models, seed) == 1.0

    @given(seeds, amplitudes)
    @settings(max_examples=50, deadline=None)
    def test_adding_a_model_never_shifts_anothers_draws(self, seed, amplitude):
        """Disjoint streams: dram's factors are identical whether or not
        thermal noise is also enabled."""
        dram = DramJitterNoise(amplitude)
        alone = dram.service_factors(seed, 2, 2)
        with_thermal = combined_service_factors(
            [dram, ThermalDeratingNoise(0.2)], seed, 2, 2
        )
        thermal = ThermalDeratingNoise(0.2).service_factors(seed, 2, 2)
        assert np.allclose(with_thermal / thermal, alone)


class TestStatsProperties:
    @given(samples(), confidences)
    @settings(max_examples=100, deadline=None)
    def test_t_interval_symmetric_about_mean(self, values, confidence):
        summary = summarize(values, confidence=confidence, resamples=50)
        assert math.isclose(
            summary.ci_low + summary.ci_high, 2.0 * summary.mean,
            rel_tol=1e-9, abs_tol=1e-6,
        )

    @given(samples(min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_summary_ordering_invariants(self, values):
        summary = summarize(values, resamples=50)
        assert summary.min <= summary.median <= summary.max
        assert summary.min <= summary.mean <= summary.max
        assert summary.ci_low <= summary.mean <= summary.ci_high

    @given(samples(), confidences, seeds)
    @settings(max_examples=50, deadline=None)
    def test_bootstrap_within_sample_range_and_seeded(self, values, confidence,
                                                      seed):
        low, high = bootstrap_interval(
            values, confidence=confidence, resamples=200, seed=seed
        )
        assert min(values) <= low <= high <= max(values)
        again = bootstrap_interval(
            values, confidence=confidence, resamples=200, seed=seed
        )
        assert (low, high) == again

    @given(st.integers(min_value=1, max_value=200), confidences)
    @settings(max_examples=60, deadline=None)
    def test_t_critical_monotone_in_confidence_and_df(self, df, confidence):
        value = t_critical(df, confidence)
        assert value > 0
        if confidence < 0.99:
            assert value < t_critical(df, 0.99)
        # more data -> narrower interval, never wider
        assert t_critical(df + 1, confidence) <= value + 1e-12

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_interval_coverage_on_uniform_mean(self, seed):
        """A 95% t-interval over n=12 uniforms should usually contain
        the true mean 0.5 — checked loosely per draw (no flaky global
        coverage assertion; the calibrated one lives in tests/bench)."""
        draws = splitmix_uniforms(seed, np.arange(12))
        summary = summarize(draws, confidence=0.99, resamples=50)
        # the 99% interval width for n=12 uniforms is ~0.26; a miss by
        # more than the half-width again would indicate a broken CI
        half_width = (summary.ci_high - summary.ci_low) / 2.0
        assert abs(summary.mean - 0.5) <= 3.0 * half_width + 0.35
