"""Host-runtime (XRT-style API) tests."""

import numpy as np
import pytest

from repro.host import Device, HostError
from repro.hw.specs import AIE_ML_DEVICE
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def kernel(device):
    return device.program(CharmDesign(config_by_name("C1")))


class TestProgramming:
    def test_program_validates_design(self, device):
        kernel = device.program(CharmDesign(config_by_name("C3")))
        assert device.kernels_programmed == 1
        assert kernel.launches == 0

    def test_device_mismatch_rejected(self, device):
        design = CharmDesign(config_by_name("C7"), device=AIE_ML_DEVICE)
        with pytest.raises(HostError, match="targets"):
            device.program(design)


class TestBufferObjects:
    def test_alloc_syncs(self, device):
        bo = device.alloc(np.ones((4, 4), np.float32))
        assert bo.synced_to_device
        assert bo.nbytes == 64

    def test_non_matrix_rejected(self, device):
        with pytest.raises(HostError):
            device.alloc(np.ones(16, np.float32))


class TestKernelRuns:
    def test_end_to_end_matmul(self, device, kernel):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 256)).astype(np.float32)
        b = rng.standard_normal((256, 128)).astype(np.float32)
        run = kernel(device.alloc(a), device.alloc(b))
        np.testing.assert_allclose(run.result(), a @ b, rtol=1e-4, atol=1e-4)
        assert run.duration_seconds > 0
        assert run.verified
        assert kernel.launches == 1

    def test_incompatible_shapes_rejected(self, device, kernel):
        a = device.alloc(np.ones((8, 8), np.float32))
        b = device.alloc(np.ones((4, 4), np.float32))
        with pytest.raises(HostError, match="incompatible"):
            kernel(a, b)

    def test_unsynced_buffer_rejected(self, device, kernel):
        from repro.host import BufferObject

        a = BufferObject(np.ones((8, 8), np.float32))  # never synced
        b = device.alloc(np.ones((8, 8), np.float32))
        with pytest.raises(HostError, match="sync"):
            kernel(a, b)

    def test_throughput_reported(self, device, kernel):
        a = device.alloc(np.ones((128, 128), np.float32))
        b = device.alloc(np.ones((128, 128), np.float32))
        run = kernel(a, b)
        assert run.throughput_ops == pytest.approx(
            run.workload.flops / run.duration_seconds
        )

    def test_larger_workload_takes_longer(self, device, kernel):
        small = kernel(
            device.alloc(np.ones((64, 64), np.float32)),
            device.alloc(np.ones((64, 64), np.float32)),
        )
        large = kernel(
            device.alloc(np.ones((1024, 1024), np.float32)),
            device.alloc(np.ones((1024, 1024), np.float32)),
        )
        assert large.duration_seconds > small.duration_seconds

    def test_multiple_kernels_coexist(self, device):
        k1 = device.program(CharmDesign(config_by_name("C1")))
        k2 = device.program(CharmDesign(config_by_name("C7")))
        a = device.alloc(np.ones((64, 64), np.float32))
        b = device.alloc(np.ones((64, 64), np.float32))
        k1(a, b)
        ai = device.alloc(np.ones((64, 64), np.int8))
        bi = device.alloc(np.ones((64, 64), np.int8))
        k2(ai, bi)
        assert k1.launches == 1 and k2.launches == 1
