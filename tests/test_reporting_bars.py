"""ASCII bar-chart rendering tests."""

import pytest

from repro.reporting import render_bars

ROWS = [
    {"config": "C1", "ms": 655.0},
    {"config": "C4", "ms": 65.6},
    {"config": "C6", "ms": 66.2},
]


class TestBars:
    def test_one_line_per_row(self):
        lines = render_bars(ROWS, "config", "ms").splitlines()
        assert len(lines) == 3

    def test_title_prepended(self):
        text = render_bars(ROWS, "config", "ms", title="Fig 9")
        assert text.splitlines()[0] == "Fig 9"

    def test_largest_value_fills_width(self):
        text = render_bars(ROWS, "config", "ms", width=30)
        c1_line = next(l for l in text.splitlines() if l.strip().startswith("C1"))
        assert "#" * 30 in c1_line

    def test_bars_proportional(self):
        text = render_bars(ROWS, "config", "ms", width=100)
        counts = {
            line.split("|")[0].strip(): line.count("#") for line in text.splitlines()
        }
        assert counts["C1"] == 100
        assert counts["C4"] == pytest.approx(10, abs=1)

    def test_log_scale_compresses(self):
        linear = render_bars(ROWS, "config", "ms", width=60)
        log = render_bars(ROWS, "config", "ms", width=60, log_scale=True)
        bar = lambda text, label: next(
            l.count("#") for l in text.splitlines() if l.strip().startswith(label)
        )
        assert bar(log, "C4") > bar(linear, "C4")

    def test_values_printed(self):
        assert "655" in render_bars(ROWS, "config", "ms")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            render_bars([{"a": "x", "v": -1}], "a", "v")

    def test_empty(self):
        assert "(no rows)" in render_bars([], "a", "v")

    def test_zero_value_empty_bar(self):
        text = render_bars([{"a": "x", "v": 0.0}, {"a": "y", "v": 5.0}], "a", "v")
        x_line = next(l for l in text.splitlines() if l.strip().startswith("x"))
        assert "#" not in x_line
