"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# property tests explore deterministically so the suite gives the same
# verdict on every run (counterexamples are hunted during development,
# not at release-verification time)
settings.register_profile(
    "deterministic",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("deterministic")

from repro.hw.specs import VCK5000
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture
def device():
    return VCK5000


@pytest.fixture(params=[c.name for c in ALL_CONFIGS])
def any_config(request):
    """Parametrised over every Table II configuration."""
    return config_by_name(request.param)


@pytest.fixture
def c1_design():
    return CharmDesign(config_by_name("C1"))


@pytest.fixture
def c6_design():
    return CharmDesign(config_by_name("C6"))


@pytest.fixture
def c11_design():
    return CharmDesign(config_by_name("C11"))


@pytest.fixture
def square_2048():
    return GemmShape(2048, 2048, 2048)


@pytest.fixture(params=[Precision.FP32, Precision.INT8])
def precision(request):
    return request.param
