"""Unit tests for the GEMM shape algebra."""

import pytest

from repro.workloads.gemm import GemmShape


class TestConstruction:
    def test_basic_dimensions(self):
        shape = GemmShape(3, 4, 5)
        assert (shape.m, shape.k, shape.n) == (3, 4, 5)

    @pytest.mark.parametrize("bad", [0, -1])
    @pytest.mark.parametrize("position", ["m", "k", "n"])
    def test_rejects_non_positive(self, bad, position):
        kwargs = {"m": 1, "k": 1, "n": 1, position: bad}
        with pytest.raises(ValueError):
            GemmShape(**kwargs)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            GemmShape(1.5, 2, 3)

    def test_hashable_and_equal(self):
        assert GemmShape(1, 2, 3) == GemmShape(1, 2, 3)
        assert len({GemmShape(1, 2, 3), GemmShape(1, 2, 3)}) == 1

    def test_square_constructor(self):
        assert GemmShape.square(32) == GemmShape(32, 32, 32)


class TestParse:
    def test_parse_paper_notation(self):
        assert GemmShape.parse("32x128x32") == GemmShape(32, 128, 32)

    def test_parse_uppercase(self):
        assert GemmShape.parse("4X8X16") == GemmShape(4, 8, 16)

    @pytest.mark.parametrize("text", ["32x32", "32x32x32x32", "axbxc", ""])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            GemmShape.parse(text)

    def test_str_round_trips(self):
        shape = GemmShape(7, 9, 11)
        assert GemmShape.parse(str(shape)) == shape


class TestArithmetic:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_flops_twice_macs(self):
        shape = GemmShape(5, 6, 7)
        assert shape.flops == 2 * shape.macs

    def test_element_counts(self):
        shape = GemmShape(2, 3, 4)
        assert shape.elements_a() == 6
        assert shape.elements_b() == 12
        assert shape.elements_c() == 8

    def test_bytes_scale_with_element_size(self):
        shape = GemmShape(8, 8, 8)
        assert shape.bytes_a(4) == 4 * shape.bytes_a(1)

    def test_total_io_bytes(self):
        shape = GemmShape(2, 3, 4)
        assert shape.total_io_bytes(1) == 6 + 12 + 8

    def test_operational_intensity(self):
        shape = GemmShape(128, 128, 128)
        oi = shape.operational_intensity(4)
        assert oi == pytest.approx(shape.flops / (3 * 128 * 128 * 4))


class TestPaddingAndTiling:
    def test_padded_to_exact_multiple_unchanged(self):
        shape = GemmShape(64, 128, 64)
        assert shape.padded_to(GemmShape(32, 32, 32)) == shape

    def test_padded_rounds_up(self):
        padded = GemmShape(100, 300, 200).padded_to(GemmShape(32, 128, 32))
        assert padded == GemmShape(128, 384, 224)

    def test_tile_counts(self):
        assert GemmShape(64, 64, 64).tile_counts(GemmShape(32, 32, 32)) == (2, 2, 2)

    def test_tile_counts_with_padding(self):
        assert GemmShape(33, 32, 32).tile_counts(GemmShape(32, 32, 32)) == (2, 1, 1)

    def test_num_tiles(self):
        assert GemmShape(64, 64, 64).num_tiles(GemmShape(32, 32, 32)) == 8

    def test_is_multiple_of(self):
        assert GemmShape(64, 128, 256).is_multiple_of(GemmShape(32, 32, 32))
        assert not GemmShape(65, 128, 256).is_multiple_of(GemmShape(32, 32, 32))

    def test_scaled(self):
        assert GemmShape(2, 3, 4).scaled(2, 3, 4) == GemmShape(4, 9, 16)

    def test_padding_waste_zero_when_aligned(self):
        assert GemmShape(64, 64, 64).padding_waste(GemmShape(32, 32, 32)) == 0.0

    def test_padding_waste_positive_when_misaligned(self):
        waste = GemmShape(33, 33, 33).padding_waste(GemmShape(32, 32, 32))
        assert 0 < waste < 1


class TestAspect:
    def test_square(self):
        assert GemmShape(32, 32, 32).aspect() == "square"

    def test_tall(self):
        assert GemmShape(8192, 128, 64).aspect() == "tall"

    def test_fat(self):
        assert GemmShape(64, 8192, 128).aspect() == "fat"

    def test_skinny(self):
        assert GemmShape(64, 128, 8192).aspect() == "skinny"

    def test_ordering_is_total(self):
        shapes = sorted([GemmShape(2, 1, 1), GemmShape(1, 2, 1), GemmShape(1, 1, 2)])
        assert shapes[0] == GemmShape(1, 1, 2)
