"""Table III workload data tests."""

import pytest

from repro.workloads.dnn import DNN_WORKLOADS, workload_by_id
from repro.workloads.gemm import GemmShape


class TestTable3Data:
    def test_six_workloads(self):
        assert len(DNN_WORKLOADS) == 6

    def test_ids_unique(self):
        ids = [w.workload_id for w in DNN_WORKLOADS]
        assert len(set(ids)) == len(ids)

    @pytest.mark.parametrize(
        "workload_id, expected",
        [
            ("B1", GemmShape(3072, 4096, 1024)),
            ("V1", GemmShape(3072, 1024, 4096)),
            ("L1", GemmShape(13824, 5120, 4096)),
            ("L2", GemmShape(6656, 20480, 4096)),
            ("L3", GemmShape(8192, 128, 3584)),
            ("L4", GemmShape(4000, 256, 8192)),
        ],
    )
    def test_shapes_match_table3(self, workload_id, expected):
        assert workload_by_id(workload_id).shape == expected

    def test_networks(self):
        assert workload_by_id("B1").network == "BERT"
        assert workload_by_id("V1").network == "ViT"
        assert workload_by_id("L4").network == "Llama2-70B"

    def test_none_are_square(self):
        """The paper's point: production shapes are tall/fat/skinny."""
        assert all(not w.shape.is_square for w in DNN_WORKLOADS)

    def test_lookup_case_insensitive(self):
        assert workload_by_id("b1") is workload_by_id("B1")

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            workload_by_id("Z9")

    def test_str_mentions_network(self):
        assert "BERT" in str(workload_by_id("B1"))
