"""Transformer workload-generator tests."""

import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.transformer import (
    BERT_LARGE,
    LLAMA2_13B,
    MODEL_ZOO,
    TransformerConfig,
    model_by_name,
)


class TestLayerGemms:
    def test_bert_large_mlp_matches_table3(self):
        """Table III's B1 (3072x4096x1024) is BERT-large's MLP-down GEMM
        at 3072 tokens; V1 is the MLP-up."""
        gemms = {g.name: g.shape for g in BERT_LARGE.layer_gemms(3072)}
        assert gemms["mlp_down"] == GemmShape(3072, 4096, 1024)
        assert gemms["mlp_up"] == GemmShape(3072, 1024, 4096)

    def test_llama13b_dimensions(self):
        assert LLAMA2_13B.hidden == 5120
        assert LLAMA2_13B.intermediate == 13824  # Table III's L1 M dimension

    def test_separate_qkv_produces_three_projections(self):
        names = [g.name for g in BERT_LARGE.layer_gemms(128)]
        assert names.count("q_proj") == 1
        assert len([n for n in names if n.endswith("_proj")]) == 3

    def test_merged_qkv(self):
        merged = TransformerConfig("m", 1024, 4096, 2, 16, separate_qkv=False)
        gemms = {g.name: g.shape for g in merged.layer_gemms(64)}
        assert gemms["qkv_proj"] == GemmShape(64, 1024, 3 * 1024)

    def test_rejects_non_positive_tokens(self):
        with pytest.raises(ValueError):
            BERT_LARGE.layer_gemms(0)


class TestForwardPass:
    def test_counts_equal_num_layers(self):
        for gemm in BERT_LARGE.forward_gemms(128):
            assert gemm.count == BERT_LARGE.num_layers

    def test_forward_flops_consistent(self):
        tokens = 256
        total = sum(g.total_flops for g in BERT_LARGE.forward_gemms(tokens))
        assert BERT_LARGE.forward_flops(tokens) == total

    def test_flops_scale_linearly_with_tokens(self):
        assert BERT_LARGE.forward_flops(512) == 2 * BERT_LARGE.forward_flops(256)

    def test_head_dim(self):
        assert LLAMA2_13B.head_dim == 128


class TestDecodeGemms:
    def test_m_is_batch(self):
        for gemm in LLAMA2_13B.decode_gemms(batch=4):
            assert gemm.shape.m == 4

    def test_k_n_match_prefill(self):
        prefill = {g.name: g.shape for g in LLAMA2_13B.layer_gemms(128)}
        for gemm in LLAMA2_13B.decode_gemms(batch=1):
            assert gemm.shape.k == prefill[gemm.name].k
            assert gemm.shape.n == prefill[gemm.name].n

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            LLAMA2_13B.decode_gemms(batch=0)


class TestZoo:
    def test_lookup(self):
        assert model_by_name("bert-large") is BERT_LARGE

    def test_unknown(self):
        with pytest.raises(KeyError):
            model_by_name("gpt-17")

    def test_zoo_unique_names(self):
        names = [m.name for m in MODEL_ZOO]
        assert len(set(names)) == len(names)
