"""Convolution (im2col) workload tests."""

import pytest

from repro.workloads.conv import ConvLayer, RESNET50_LAYERS, layer_by_name
from repro.workloads.gemm import GemmShape


class TestGeometry:
    def test_output_size_same_padding(self):
        layer = ConvLayer("c", 64, 64, 3, 56, padding=1)
        assert layer.output_size == 56

    def test_output_size_stride(self):
        layer = ConvLayer("c", 3, 64, 7, 224, stride=2, padding=3)
        assert layer.output_size == 112

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ConvLayer("bad", 3, 8, 9, 4)


class TestLowering:
    def test_im2col_shape(self):
        layer = ConvLayer("c", 64, 128, 3, 28, padding=1)
        assert layer.im2col_shape() == GemmShape(28 * 28, 3 * 3 * 64, 128)

    def test_batch_scales_m(self):
        layer = layer_by_name("stage2_3x3")
        assert layer.im2col_shape(batch=8).m == 8 * layer.im2col_shape().m

    def test_1x1_conv_has_no_expansion(self):
        layer = layer_by_name("stage1_1x1a")
        assert layer.im2col_expansion() == pytest.approx(1.0)

    def test_3x3_conv_expands_about_9x(self):
        layer = layer_by_name("stage1_3x3")
        assert layer.im2col_expansion() == pytest.approx(9.0, rel=0.01)

    def test_macs_match_direct_formula(self):
        layer = layer_by_name("stage3_3x3")
        direct = (
            layer.output_size**2
            * layer.kernel**2
            * layer.in_channels
            * layer.out_channels
        )
        assert layer.macs() == direct

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            layer_by_name("conv1").im2col_shape(batch=0)


class TestIntegrationWithEstimators:
    def test_conv_runs_through_analytical_model(self):
        from repro.core.analytical_model import AnalyticalModel
        from repro.mapping.charm import CharmDesign
        from repro.mapping.configs import config_by_name

        design = CharmDesign(config_by_name("C5"))
        shape = layer_by_name("stage2_3x3").im2col_shape(batch=8)
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.total_seconds > 0

    def test_conv_shapes_are_tall(self):
        """im2col GEMMs are tall (M >> K, N) — more non-square shapes
        for the fragmentation study."""
        tall = [l for l in RESNET50_LAYERS if l.im2col_shape(8).aspect() == "tall"]
        assert len(tall) >= 4

    def test_zoo_lookup(self):
        assert layer_by_name("conv1").out_channels == 64
        with pytest.raises(KeyError):
            layer_by_name("nope")
