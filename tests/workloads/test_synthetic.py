"""Synthetic workload generator tests."""

import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.synthetic import (
    native_multiples,
    shape_sweep,
    single_aie_sweep,
    square_sweep,
)


class TestSquareSweep:
    def test_sizes(self):
        shapes = square_sweep([16, 32, 64])
        assert shapes == [GemmShape.square(s) for s in (16, 32, 64)]

    def test_empty(self):
        assert square_sweep([]) == []


class TestShapeSweep:
    def test_cartesian_product(self):
        shapes = list(shape_sweep([1, 2], [3], [4, 5]))
        assert len(shapes) == 4
        assert GemmShape(2, 3, 5) in shapes

    def test_lazy(self):
        iterator = shape_sweep([1], [1], [1])
        assert next(iterator) == GemmShape(1, 1, 1)


class TestNativeMultiples:
    def test_scales_all_dimensions(self):
        native = GemmShape(32, 128, 128)
        shapes = native_multiples(native, [1, 2, 4])
        assert shapes[0] == native
        assert shapes[2] == GemmShape(128, 512, 512)

    def test_all_are_multiples(self):
        native = GemmShape(32, 128, 128)
        for shape in native_multiples(native, [2, 3, 5]):
            assert shape.is_multiple_of(native)


class TestSingleAieSweep:
    def test_respects_memory_bound(self):
        max_elements = 4096  # FP32 double-buffer operand limit
        for shape in single_aie_sweep(max_elements):
            assert shape.elements_a() <= max_elements
            assert shape.elements_b() <= max_elements
            assert shape.elements_c() <= max_elements

    def test_contains_paper_kernels(self):
        shapes = single_aie_sweep(4096)
        assert GemmShape(32, 32, 32) in shapes
        assert GemmShape(64, 64, 64) in shapes
        assert GemmShape(16, 128, 16) in shapes

    def test_sorted_by_macs(self):
        shapes = single_aie_sweep(4096)
        macs = [s.macs for s in shapes]
        assert macs == sorted(macs)

    def test_no_duplicates(self):
        shapes = single_aie_sweep(16384)
        assert len(shapes) == len(set(shapes))

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            single_aie_sweep(0)
