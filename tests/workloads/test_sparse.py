"""SpMM workload and estimator tests."""

import pytest

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import SpmmEstimator, SpmmWorkload


@pytest.fixture(scope="module")
def estimator():
    return SpmmEstimator(CharmDesign(config_by_name("C5")))


SHAPE = GemmShape(4096, 4096, 512)


class TestWorkload:
    def test_nnz(self):
        workload = SpmmWorkload(GemmShape(100, 100, 10), density=0.1)
        assert workload.nnz == 1000

    def test_useful_macs_scale_with_density(self):
        dense = SpmmWorkload(SHAPE, 1.0)
        sparse = SpmmWorkload(SHAPE, 0.1)
        assert sparse.useful_macs == pytest.approx(0.1 * dense.useful_macs, rel=0.01)

    def test_csr_bytes_include_indices(self):
        workload = SpmmWorkload(GemmShape(10, 10, 4), density=1.0)
        dense_bytes = workload.shape.bytes_a(4)
        assert workload.csr_bytes(4) > dense_bytes  # indices cost extra

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_rejects_bad_density(self, bad):
        with pytest.raises(ValueError):
            SpmmWorkload(SHAPE, bad)


class TestComparison:
    def test_dense_matrix_prefers_dense_execution(self, estimator):
        """At full density the gather kernel's derated datapath loses."""
        comparison = estimator.compare(SpmmWorkload(SHAPE, density=1.0))
        assert not comparison.sparse_wins

    def test_very_sparse_matrix_prefers_sparse_execution(self, estimator):
        comparison = estimator.compare(SpmmWorkload(SHAPE, density=0.01))
        assert comparison.sparse_wins
        assert comparison.speedup > 2

    def test_crossover_exists_and_is_sensible(self, estimator):
        crossover = estimator.crossover_density(SHAPE)
        assert 0.01 < crossover < 0.6
        # just below: sparse wins; just above: dense wins
        assert estimator.compare(SpmmWorkload(SHAPE, crossover * 0.8)).sparse_wins
        assert not estimator.compare(SpmmWorkload(SHAPE, min(1.0, crossover * 1.2))).sparse_wins

    def test_sparse_time_monotone_in_density(self, estimator):
        times = [
            estimator.compare(SpmmWorkload(SHAPE, d)).sparse_seconds
            for d in (0.05, 0.1, 0.2, 0.4, 0.8)
        ]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_dense_time_independent_of_density(self, estimator):
        a = estimator.compare(SpmmWorkload(SHAPE, 0.05)).dense_seconds
        b = estimator.compare(SpmmWorkload(SHAPE, 0.5)).dense_seconds
        assert a == pytest.approx(b)
