"""Physical-placement tests."""

import pytest

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.mapping.placement import CharmPlacer, PlacementError


class TestSinglePlacement:
    def test_c1_uses_16_tiles(self):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name("C1")))
        assert placement.tiles_used == 16
        assert placer.utilization() == pytest.approx(16 / 400)

    def test_pack_depth_matches_precision(self):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name("C1")))
        assert all(p.depth == 4 for p in placement.packs)  # FP32 packs of 4
        int8 = CharmPlacer().place(CharmDesign(config_by_name("C7")))
        assert all(p.depth == 2 for p in int8.packs)  # INT8 packs of 2

    def test_packs_are_cascade_contiguous(self):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name("C1")))
        for pack in placement.packs:
            for a, b in zip(pack.tiles, pack.tiles[1:]):
                assert placer.array.tiles[a].cascade_successor() == b

    def test_no_tile_shared_between_packs(self):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name("C3")))
        tiles = [t for p in placement.packs for t in p.tiles]
        assert len(tiles) == len(set(tiles))

    def test_memory_reserved_on_tiles(self):
        placer = CharmPlacer()
        design = CharmDesign(config_by_name("C1"))
        placement = placer.place(design)
        position = placement.packs[0].head
        assert placer.array.tiles[position].reserved_bytes == design.kernel.footprint_bytes()

    def test_plios_allocated(self):
        placer = CharmPlacer()
        placer.place(CharmDesign(config_by_name("C1")))
        assert placer.plio_usage() == 7

    def test_feeder_routes_exist(self):
        placer = CharmPlacer()
        placement = placer.place(CharmDesign(config_by_name("C1")))
        assert len(placement.feeder_routes) == len(placement.packs)
        assert placement.max_feeder_hops() >= 0


class TestReplication:
    def test_c1_replicates_25_times(self):
        """Fig. 13: the 7-PLIO 16-AIE design fills the whole array."""
        placer = CharmPlacer()
        replicas = placer.place_replicas(CharmDesign(config_by_name("C1")))
        assert len(replicas) == 25
        assert placer.utilization() == pytest.approx(1.0)

    def test_c6_fits_once(self):
        placer = CharmPlacer()
        replicas = placer.place_replicas(CharmDesign(config_by_name("C6")))
        assert len(replicas) == 1
        assert placer.utilization() == pytest.approx(384 / 400)

    def test_exact_count_raises_when_impossible(self):
        placer = CharmPlacer()
        with pytest.raises((PlacementError, Exception)):
            placer.place_replicas(CharmDesign(config_by_name("C6")), count=2)

    def test_later_replicas_have_longer_feeders(self):
        """Replicas placed higher in the array route farther from the
        interface row — the physical cost Fig. 13 abstracts."""
        placer = CharmPlacer()
        replicas = placer.place_replicas(CharmDesign(config_by_name("C1")))
        first, last = replicas[0], replicas[-1]
        assert last.mean_feeder_hops() > first.mean_feeder_hops()

    def test_congestion_grows_with_replicas(self):
        placer = CharmPlacer()
        placer.place(CharmDesign(config_by_name("C1")))
        low = placer.congestion()
        placer.place_replicas(CharmDesign(config_by_name("C1")))
        assert placer.congestion() >= low
