"""CharmDesign validation and behaviour tests."""

import dataclasses

import pytest

from repro.hw.dram import CHARM_DEFAULT_PORTS
from repro.hw.specs import AIE_ML_DEVICE
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign, DesignError
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.mapping.grouping import AieGrouping
from repro.mapping.configs import HardwareConfig
from repro.workloads.gemm import GemmShape


class TestValidation:
    def test_all_table2_configs_valid(self, any_config):
        CharmDesign(any_config).validate()

    def test_too_many_aies_rejected(self):
        grouping = AieGrouping(16, 4, 8, GemmShape.square(32), Precision.FP32)
        config = HardwareConfig("huge", grouping, num_plios=96)
        with pytest.raises(DesignError, match="AIEs"):
            CharmDesign(config).validate()

    def test_too_many_plios_rejected(self):
        config = dataclasses.replace(config_by_name("C1"), num_plios=500)
        with pytest.raises(DesignError, match="PLIO"):
            CharmDesign(config).validate()

    def test_unscalable_kernel_rejected(self):
        grouping = AieGrouping(1, 4, 4, GemmShape.square(64), Precision.FP32)
        config = HardwareConfig("big-kernel", grouping, num_plios=7)
        with pytest.raises(DesignError, match="neighbour"):
            CharmDesign(config).validate()

    def test_unscalable_kernel_allowed_for_whatif(self):
        grouping = AieGrouping(1, 4, 4, GemmShape.square(64), Precision.FP32)
        config = HardwareConfig("big-kernel", grouping, num_plios=7)
        CharmDesign(config, allow_neighbor_kernels=True).validate()

    def test_misaligned_pack_depth_rejected(self):
        grouping = AieGrouping(1, 6, 4, GemmShape.square(32), Precision.FP32)
        config = HardwareConfig("odd-gk", grouping, num_plios=10)
        with pytest.raises(DesignError, match="pack depth"):
            CharmDesign(config).validate()

    def test_is_valid_helper(self):
        assert CharmDesign(config_by_name("C1")).is_valid()


class TestProperties:
    def test_peak_ops_uses_occupied_aies(self, c6_design):
        assert c6_design.peak_ops() == pytest.approx(
            1.25e9 * 8 * 384 * 2
        )

    def test_kernel_always_double_buffered(self, c1_design):
        assert c1_design.kernel.double_buffered

    def test_dram_model_uses_config_ports(self, c1_design):
        assert c1_design.dram.total_bandwidth() == pytest.approx(34e9, rel=0.01)

    def test_with_ports(self, c1_design):
        slow = c1_design.with_ports(CHARM_DEFAULT_PORTS)
        assert slow.dram.total_bandwidth() == pytest.approx(20e9, rel=0.01)

    def test_with_single_buffering(self, c6_design):
        single = c6_design.with_single_buffering()
        assert not single.pl_double_buffered
        assert c6_design.pl_double_buffered  # original untouched


class TestTilePlan:
    def test_plan_fits_device(self, c6_design, square_2048):
        plan = c6_design.tile_plan(square_2048)
        assert plan.fits(c6_design.device)

    def test_single_buffer_plan_uses_freed_capacity(self, c11_design, square_2048):
        double = c11_design.tile_plan(square_2048)
        single = c11_design.with_single_buffering().tile_plan(square_2048)
        assert single.traffic().total <= double.traffic().total

    def test_second_generation_device(self):
        """Section V-K: the pipeline runs unchanged on AIE-ML."""
        config = config_by_name("C7")
        design = CharmDesign(config, device=AIE_ML_DEVICE)
        design.validate()
        plan = design.tile_plan(GemmShape(1024, 1024, 1024))
        assert plan.num_dram_tiles >= 1
