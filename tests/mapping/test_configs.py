"""Table II configuration tests — every published cell must reproduce."""

import pytest

from repro.kernels.precision import Precision
from repro.mapping.configs import (
    ALL_CONFIGS,
    FP32_CONFIGS,
    INT8_CONFIGS,
    KERNEL_FP32,
    KERNEL_INT8,
    config_by_name,
    configs_for,
)
from repro.workloads.gemm import GemmShape

#: Table II, verbatim from the paper.
TABLE_II = {
    "C1": ("fp32", 16, "32x128x128", 7),
    "C2": ("fp32", 32, "64x128x128", 10),
    "C3": ("fp32", 64, "128x128x128", 20),
    "C4": ("fp32", 128, "128x256x128", 36),
    "C5": ("fp32", 256, "256x128x256", 64),
    "C6": ("fp32", 384, "384x128x256", 96),
    "C7": ("int8", 16, "128x256x128", 14),
    "C8": ("int8", 32, "128x256x256", 20),
    "C9": ("int8", 64, "256x256x256", 40),
    "C10": ("int8", 128, "256x512x256", 72),
    "C11": ("int8", 256, "256x512x512", 112),
}


class TestTable2Verbatim:
    @pytest.mark.parametrize("name", list(TABLE_II))
    def test_row_matches_paper(self, name):
        precision, aies, native, plios = TABLE_II[name]
        config = config_by_name(name)
        assert str(config.precision) == precision
        assert config.num_aies == aies
        assert str(config.native_size) == native
        assert config.num_plios == plios

    def test_eleven_configs(self):
        assert len(ALL_CONFIGS) == 11
        assert len(FP32_CONFIGS) == 6
        assert len(INT8_CONFIGS) == 5

    def test_grouping_product_identity(self, any_config):
        g = any_config.grouping
        assert g.gm * g.gk * g.gn == any_config.num_aies

    def test_native_size_from_grouping(self, any_config):
        g = any_config.grouping
        expected = GemmShape(g.gm * g.kernel.m, g.gk * g.kernel.k, g.gn * g.kernel.n)
        assert any_config.native_size == expected

    def test_kernels_match_section_vc(self, any_config):
        expected = KERNEL_FP32 if any_config.precision is Precision.FP32 else KERNEL_INT8
        assert any_config.kernel == expected

    def test_all_use_4r2w(self, any_config):
        """Table II note: all configurations use the 4r2w DDR setup."""
        assert str(any_config.dram_ports) == "4r2w"


class TestPlioSplit:
    def test_split_sums_to_total(self, any_config):
        assert sum(any_config.plio_split()) == any_config.num_plios

    def test_split_minimum_one_each(self, any_config):
        assert all(p >= 1 for p in any_config.plio_split())

    def test_c1_split_matches_fig12b(self):
        """Fig. 12(b): 2 for A, 4 for B, 1 for C."""
        assert config_by_name("C1").plio_split() == (2, 4, 1)

    def test_c7_split_matches_fig12c(self):
        """Fig. 12(c): 8 for A, 4 for B, 2 for C."""
        assert config_by_name("C7").plio_split() == (8, 4, 2)


class TestLookups:
    def test_case_insensitive(self):
        assert config_by_name("c6") is config_by_name("C6")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            config_by_name("C99")

    def test_configs_for_precision(self):
        assert configs_for(Precision.FP32) == FP32_CONFIGS
        assert configs_for(Precision.INT8) == INT8_CONFIGS

    def test_str_mentions_native_size(self):
        assert "384x128x256" in str(config_by_name("C6"))
