"""Grouping algebra tests (Fig. 3 / Section IV-A)."""

import pytest

from repro.kernels.precision import Precision
from repro.mapping.grouping import AieGrouping, CLUSTER_AIES, pack_depth_for
from repro.workloads.gemm import GemmShape

FP32_KERNEL = GemmShape.square(32)
INT8_KERNEL = GemmShape.square(64)


class TestPackDepth:
    def test_fp32_pack_of_4(self):
        """CHARM chains 4 FP32 engines by cascade."""
        assert pack_depth_for(Precision.FP32) == 4

    def test_int8_pack_of_2(self):
        assert pack_depth_for(Precision.INT8) == 2


class TestNativeSize:
    def test_fig3a_expanded_k(self):
        """Fig. 3(a): 4 engines chained along K -> native 32x128x32."""
        grouping = AieGrouping(1, 4, 1, FP32_KERNEL, Precision.FP32)
        assert grouping.native_size == GemmShape(32, 128, 32)

    def test_fig3b_expanded_m(self):
        grouping = AieGrouping(4, 1, 1, FP32_KERNEL, Precision.FP32)
        assert grouping.native_size == GemmShape(128, 32, 32)

    def test_fig3c_expanded_n(self):
        grouping = AieGrouping(1, 1, 4, FP32_KERNEL, Precision.FP32)
        assert grouping.native_size == GemmShape(32, 32, 128)

    def test_num_aies_is_product(self):
        grouping = AieGrouping(2, 4, 3, FP32_KERNEL, Precision.FP32)
        assert grouping.num_aies == 24

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            AieGrouping(0, 4, 4, FP32_KERNEL, Precision.FP32)


class TestPacksAndClusters:
    def test_pack_depth_capped_by_gk(self):
        grouping = AieGrouping(4, 1, 4, FP32_KERNEL, Precision.FP32)
        assert grouping.pack_depth == 1

    def test_num_packs(self):
        grouping = AieGrouping(1, 4, 4, FP32_KERNEL, Precision.FP32)
        assert grouping.num_packs == 4

    def test_pl_reduction_needed_when_gk_exceeds_pack(self):
        """Section IV-A: reductions beyond a pack happen in the PL."""
        deep = AieGrouping(4, 8, 4, FP32_KERNEL, Precision.FP32)
        assert deep.pl_reduction_groups == 2
        shallow = AieGrouping(4, 4, 4, FP32_KERNEL, Precision.FP32)
        assert shallow.pl_reduction_groups == 1

    def test_cluster_count(self):
        grouping = AieGrouping(4, 4, 4, FP32_KERNEL, Precision.FP32)
        assert grouping.num_clusters == 64 // CLUSTER_AIES


class TestInvocations:
    def test_exact_multiple(self):
        grouping = AieGrouping(1, 4, 4, FP32_KERNEL, Precision.FP32)
        workload = grouping.native_size.scaled(2, 2, 2)
        assert grouping.kernel_invocations(workload) == 8

    def test_padding_rounds_up(self):
        grouping = AieGrouping(1, 4, 4, FP32_KERNEL, Precision.FP32)
        native = grouping.native_size
        workload = GemmShape(native.m + 1, native.k, native.n)
        assert grouping.kernel_invocations(workload) == 2
