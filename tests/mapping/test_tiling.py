"""Three-level tiling tests (Fig. 2 / Section IV-A)."""

import pytest

from repro.hw.specs import VCK5000
from repro.kernels.precision import Precision
from repro.mapping.tiling import TilePlan, plan_tiling
from repro.workloads.gemm import GemmShape

NATIVE_C6 = GemmShape(384, 128, 256)
NATIVE_C1 = GemmShape(32, 128, 128)


def make_plan(multiples=(1, 1, 1), workload=GemmShape(2048, 2048, 2048),
              native=NATIVE_C6, precision=Precision.FP32, double=True):
    return TilePlan(workload, native, precision, multiples, double)


class TestGeometry:
    def test_padding(self):
        plan = make_plan()
        assert plan.padded == GemmShape(2304, 2048, 2048)

    def test_pl_tile_scales_native(self):
        plan = make_plan((2, 1, 3))
        assert plan.pl_tile == GemmShape(768, 128, 768)

    def test_dram_tile_counts(self):
        plan = make_plan((1, 1, 1))
        assert plan.dram_tile_counts == (6, 16, 8)

    def test_num_dram_tiles(self):
        plan = make_plan((1, 1, 1))
        assert plan.num_dram_tiles == 6 * 16 * 8

    def test_pl_tiles_per_dram_tile(self):
        assert make_plan((2, 3, 4)).pl_tiles_per_dram_tile == 24

    def test_total_native_tiles_conserved(self):
        """num_dram_tiles * pl_tiles_per_dram_tile covers the padded
        workload exactly when multiples divide the tile counts."""
        plan = make_plan((2, 2, 2))
        assert (
            plan.num_dram_tiles * plan.pl_tiles_per_dram_tile
            >= plan.total_native_tiles
        )

    def test_rejects_zero_multiples(self):
        with pytest.raises(ValueError):
            make_plan((0, 1, 1))


class TestFootprint:
    def test_double_buffering_doubles_footprint(self):
        db = make_plan((1, 1, 1), double=True)
        sb = make_plan((1, 1, 1), double=False)
        assert db.pl_footprint_bytes() == 2 * sb.pl_footprint_bytes()

    def test_footprint_components(self):
        plan = make_plan((1, 1, 1))
        eb = 4
        expected = 2 * (
            NATIVE_C6.bytes_a(eb) + NATIVE_C6.bytes_b(eb) + NATIVE_C6.bytes_c(eb)
        )
        assert plan.pl_footprint_bytes() == expected

    def test_fits_respects_budget_override(self):
        plan = make_plan((1, 1, 1))
        assert plan.fits(VCK5000)
        assert not plan.fits(VCK5000, budget_bytes=plan.pl_footprint_bytes() - 1)


class TestTraffic:
    def test_a_reread_per_n_tile(self):
        plan = make_plan((1, 1, 1))
        traffic = plan.traffic()
        tn = plan.dram_tile_counts[2]
        assert traffic.read_a == plan.padded.bytes_a(4) * tn

    def test_b_reread_per_m_tile(self):
        plan = make_plan((1, 1, 1))
        traffic = plan.traffic()
        tm = plan.dram_tile_counts[0]
        assert traffic.read_b == plan.padded.bytes_b(4) * tm

    def test_c_written_once(self):
        plan = make_plan((1, 1, 1))
        assert plan.traffic().write_c == plan.padded.bytes_c(4)

    def test_tiling_overhead_at_least_one(self):
        assert make_plan((1, 1, 1)).traffic().tiling_overhead >= 1.0

    def test_single_tile_plan_has_no_overhead(self):
        workload = NATIVE_C6
        plan = TilePlan(workload, NATIVE_C6, Precision.FP32, (1, 1, 1))
        assert plan.traffic().tiling_overhead == pytest.approx(1.0)

    def test_bigger_tiles_less_traffic(self):
        small = make_plan((1, 1, 1)).traffic().total
        large = make_plan((2, 1, 2)).traffic().total
        assert large < small

    def test_effective_oi_below_ideal(self):
        """Fig. 15: tiling overhead pushes OI left."""
        plan = make_plan((1, 1, 1))
        ideal = plan.workload.operational_intensity(4)
        assert plan.effective_operational_intensity() < ideal

    def test_c_write_fraction(self):
        plan = make_plan((1, 1, 1))
        assert plan.c_write_fraction == pytest.approx(1 / 16)


class TestPlanSearch:
    def test_minimal_plan_when_budget_tight(self):
        minimal = TilePlan(GemmShape(2048, 2048, 2048), NATIVE_C6, Precision.FP32, (1, 1, 1))
        plan = plan_tiling(
            GemmShape(2048, 2048, 2048),
            NATIVE_C6,
            Precision.FP32,
            budget_bytes=minimal.pl_footprint_bytes(),
        )
        assert plan.multiples == (1, 1, 1)

    def test_search_never_exceeds_budget(self):
        plan = plan_tiling(GemmShape(2048, 2048, 2048), NATIVE_C6, Precision.FP32)
        assert plan.fits(VCK5000)

    def test_search_minimises_traffic(self):
        chosen = plan_tiling(GemmShape(2048, 2048, 2048), NATIVE_C1, Precision.FP32)
        baseline = TilePlan(
            GemmShape(2048, 2048, 2048), NATIVE_C1, Precision.FP32, (1, 1, 1)
        )
        assert chosen.traffic().total <= baseline.traffic().total

    def test_raises_when_nothing_fits(self):
        with pytest.raises(ValueError, match="no tile plan fits"):
            plan_tiling(
                GemmShape(2048, 2048, 2048),
                NATIVE_C6,
                Precision.FP32,
                budget_bytes=1024,
            )

    def test_custom_objective(self):
        # minimise the number of DRAM tiles instead of traffic
        plan = plan_tiling(
            GemmShape(2048, 2048, 2048),
            NATIVE_C1,
            Precision.FP32,
            objective=lambda p: p.num_dram_tiles,
        )
        greedy = plan_tiling(GemmShape(2048, 2048, 2048), NATIVE_C1, Precision.FP32)
        assert plan.num_dram_tiles <= greedy.num_dram_tiles

    def test_small_workload_single_tile(self):
        plan = plan_tiling(NATIVE_C1, NATIVE_C1, Precision.FP32)
        assert plan.num_dram_tiles == 1
