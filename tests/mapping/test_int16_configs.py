"""INT16 (CHARM 2.0) extension-configuration tests."""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import INT16_CONFIGS, KERNEL_INT16, config_by_name, configs_for
from repro.sim.functional import FunctionalGemm
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape


class TestInt16Kernel:
    def test_kernel_is_scalable(self):
        kernel = SingleAieGemmKernel(KERNEL_INT16, Precision.INT16)
        assert kernel.is_scalable()
        assert kernel.double_buffer_legal()

    def test_kernel_fills_local_memory_exactly(self):
        kernel = SingleAieGemmKernel(KERNEL_INT16, Precision.INT16)
        assert kernel.footprint_bytes() == 32 * 1024

    def test_kernel_efficiency_over_90pct(self):
        kernel = SingleAieGemmKernel(KERNEL_INT16, Precision.INT16)
        assert kernel.efficiency() > 0.90

    def test_compute_between_fp32_and_int8(self):
        """INT16 sits between FP32 and INT8 (32 MACs/cycle)."""
        shape = GemmShape(64, 64, 64)
        from repro.kernels.kernel_timing import compute_cycles

        fp32 = compute_cycles(shape, Precision.FP32)
        int16 = compute_cycles(shape, Precision.INT16)
        int8 = compute_cycles(shape, Precision.INT8)
        assert int8 < int16 < fp32


class TestInt16Configs:
    def test_three_extension_configs(self):
        assert len(INT16_CONFIGS) == 3
        assert configs_for(Precision.INT16) == INT16_CONFIGS

    def test_all_valid_designs(self):
        for config in INT16_CONFIGS:
            CharmDesign(config).validate()

    def test_lookup_by_name(self):
        assert config_by_name("I2").num_aies == 64

    def test_pack_depth_is_two(self):
        for config in INT16_CONFIGS:
            assert config.grouping.pack_depth == 2


class TestInt16Execution:
    def test_functional_correctness(self):
        design = CharmDesign(config_by_name("I1"))
        result = FunctionalGemm(design, seed=4).run(design.native_size.scaled(2, 1, 2))
        assert result.max_abs_error == 0.0

    def test_model_and_hw_agree(self):
        design = CharmDesign(config_by_name("I2"))
        workload = GemmShape(1024, 1024, 1024)
        _, error = HwSimulator(design).compare_with_model(workload)
        assert abs(error) <= 0.05

    def test_int16_between_precisions_end_to_end(self):
        workload = GemmShape(2048, 2048, 2048)
        fp32 = AnalyticalModel(CharmDesign(config_by_name("C5"))).estimate(workload)
        int16 = AnalyticalModel(CharmDesign(config_by_name("I3"))).estimate(workload)
        int8 = AnalyticalModel(CharmDesign(config_by_name("C11"))).estimate(workload)
        assert int8.total_seconds < int16.total_seconds < fp32.total_seconds

    def test_dse_supports_int16(self):
        from repro.core.dse import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(Precision.INT16, max_aies=64)
        best = explorer.best(GemmShape(1024, 1024, 1024))
        assert best.config.precision is Precision.INT16
