"""Fragmentation/padding analysis tests (the paper's future work)."""

import pytest

from repro.kernels.precision import Precision
from repro.mapping.configs import config_by_name
from repro.mapping.fragmentation import FragmentationAnalysis
from repro.workloads.dnn import workload_by_id
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def analysis():
    return FragmentationAnalysis(Precision.FP32)


class TestPaddingReports:
    def test_aligned_workload_no_waste(self, analysis):
        config = config_by_name("C1")
        report = analysis.report(config, config.native_size.scaled(2, 2, 2))
        assert report.waste_fraction == 0.0
        assert report.padded_dimensions == (0, 0, 0)

    def test_misaligned_workload_wastes(self, analysis):
        config = config_by_name("C6")  # native 384x128x256
        report = analysis.report(config, GemmShape(400, 130, 260))
        assert report.waste_fraction > 0.3

    def test_bigger_native_sizes_waste_more_on_odd_shapes(self, analysis):
        odd = GemmShape(1000, 1000, 1000)
        small = analysis.report(config_by_name("C1"), odd)
        large = analysis.report(config_by_name("C6"), odd)
        assert large.waste_fraction > small.waste_fraction

    def test_useful_throughput_excludes_padding(self, analysis):
        config = config_by_name("C6")
        odd = GemmShape(400, 130, 260)
        report = analysis.report(config, odd)
        assert report.useful_throughput_ops == pytest.approx(
            odd.flops / report.seconds
        )


class TestSweeps:
    def test_sweep_covers_all_configs(self, analysis):
        reports = analysis.sweep(GemmShape(1024, 1024, 1024))
        assert len(reports) == 6  # all FP32 configs
        aies = [r.config.num_aies for r in reports]
        assert aies == sorted(aies, reverse=True)

    def test_best_balances_speed_and_waste(self, analysis):
        """For an awkward small shape, the best useful-throughput config
        need not be the biggest array."""
        best = analysis.best(GemmShape(100, 100, 100))
        assert best.config.num_aies < 384

    def test_large_aligned_workload_prefers_large_config(self, analysis):
        best = analysis.best(GemmShape(4096, 4096, 4096))
        assert best.config.num_aies >= 256

    def test_waste_matrix_for_table3(self, analysis):
        workloads = [workload_by_id(i).shape for i in ("B1", "L3")]
        matrix = analysis.waste_matrix(workloads)
        assert set(matrix) == {c.name for c in analysis.configs}
        for row in matrix.values():
            for value in row.values():
                assert 0.0 <= value < 1.0

    def test_table3_waste_small_on_c6(self, analysis):
        """Table III shapes are large, so padding is amortised."""
        report = analysis.report(config_by_name("C6"), workload_by_id("B1").shape)
        assert report.waste_fraction < 0.15
