"""Fig. 12/13 PLIO scheme tests."""

import pytest

from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import make_scheme, reference_schemes, scheme_sweep
from repro.mapping.switching import SwitchingKind


@pytest.fixture
def c1():
    return config_by_name("C1")


@pytest.fixture
def c7():
    return config_by_name("C7")


class TestReferenceSchemes:
    def test_twelve_schemes_each(self, c1, c7):
        """The paper evaluates twelve PLIO-count values."""
        assert len(reference_schemes(c1)) == 12
        assert len(reference_schemes(c7)) == 12

    def test_fp32_range_3_to_36(self, c1):
        plios = [s.total_plios for s in reference_schemes(c1)]
        assert min(plios) == 3 and max(plios) == 36

    def test_int8_range_3_to_34(self, c7):
        plios = [s.total_plios for s in reference_schemes(c7)]
        assert min(plios) == 3 and max(plios) == 34

    def test_fig12b_present(self, c1):
        """7 PLIOs split 2 A / 4 B / 1 C."""
        seven = next(s for s in reference_schemes(c1) if s.total_plios == 7)
        assert (seven.conn_a.num_plios, seven.conn_b.num_plios, seven.conn_c.num_plios) == (2, 4, 1)

    def test_fig12c_present(self, c7):
        """14 PLIOs split 8 A / 4 B / 2 C."""
        fourteen = next(s for s in reference_schemes(c7) if s.total_plios == 14)
        assert (
            fourteen.conn_a.num_plios,
            fourteen.conn_b.num_plios,
            fourteen.conn_c.num_plios,
        ) == (8, 4, 2)

    def test_only_16_aie_configs_supported(self):
        with pytest.raises(ValueError):
            reference_schemes(config_by_name("C6"))


class TestTiming:
    def test_times_non_increasing_with_plios(self, c1, c7):
        for config in (c1, c7):
            cycles = [s.invocation_cycles() for s in reference_schemes(config)]
            assert all(b <= a for a, b in zip(cycles, cycles[1:]))

    def test_fp32_speedup_4_6x(self, c1):
        """Paper: 3 -> 36 PLIOs improves performance by 4.63x."""
        schemes = reference_schemes(c1)
        speedup = schemes[0].invocation_cycles() / schemes[-1].invocation_cycles()
        assert speedup == pytest.approx(4.63, abs=0.25)

    def test_int8_speedup_large(self, c7):
        """Paper reports 6.60x; our scheme model yields ~9x (recorded
        deviation in EXPERIMENTS.md) — assert the band."""
        schemes = reference_schemes(c7)
        speedup = schemes[0].invocation_cycles() / schemes[-1].invocation_cycles()
        assert 5.5 <= speedup <= 9.5

    def test_best_fp32_scheme_is_compute_bound(self, c1):
        assert reference_schemes(c1)[-1].bottleneck() == "compute"

    def test_minimal_scheme_is_input_bound(self, c1):
        assert reference_schemes(c1)[0].bottleneck() in ("A", "B")

    def test_transfer_cycles_positive(self, c1):
        scheme = reference_schemes(c1)[0]
        for matrix in "ABC":
            assert scheme.transfer_cycles(matrix) > 0


class TestUtilization:
    def test_3_plio_scheme_full_array(self, c1):
        assert reference_schemes(c1)[0].array_utilization() == pytest.approx(1.0)

    def test_36_plio_scheme_28_pct(self, c1):
        assert reference_schemes(c1)[-1].array_utilization() == pytest.approx(0.28)

    def test_utilization_non_increasing(self, c1):
        utils = [s.array_utilization() for s in reference_schemes(c1)]
        assert all(b <= a for a, b in zip(utils, utils[1:]))

    def test_sweep_records(self, c1):
        records = scheme_sweep(c1)
        assert len(records) == 12
        assert records == sorted(records, key=lambda r: r["plios"])
        assert {"plios", "cycles", "bottleneck", "replicas", "utilization"} <= set(records[0])


class TestMakeScheme:
    def test_chunk_accounting_from_grouping(self, c1):
        scheme = make_scheme(
            c1, 2, 4, 1, SwitchingKind.HYBRID, SwitchingKind.HYBRID, SwitchingKind.HYBRID
        )
        g = c1.grouping
        assert scheme.conn_a.distinct_chunks == g.gm * g.gk
        assert scheme.conn_a.fanout == g.gn
        assert scheme.conn_b.distinct_chunks == g.gk * g.gn
        assert scheme.conn_b.fanout == g.gm
        assert scheme.conn_c.distinct_chunks == g.gm * g.gn
