"""PL reduction tests (Section IV-A's out-of-cluster reductions)."""

import pytest

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.mapping.reduction import estimate_pl_reduction


class TestReductionGroups:
    def test_cascade_only_configs_need_no_pl_reduction(self):
        """C1-C3, C5, C6 have gk == pack depth: cascade does it all."""
        for name in ("C1", "C2", "C3", "C5", "C6"):
            estimate = estimate_pl_reduction(CharmDesign(config_by_name(name)))
            assert not estimate.needs_pl_reduction
            assert estimate.keeps_up
            assert estimate.bram_staging_bytes == 0

    def test_deep_k_configs_reduce_in_pl(self):
        """C4 (gk=8, packs of 4) and C10/C11 (gk=8, packs of 2) need it."""
        c4 = estimate_pl_reduction(CharmDesign(config_by_name("C4")))
        assert c4.groups == 2 and c4.needs_pl_reduction
        c11 = estimate_pl_reduction(CharmDesign(config_by_name("C11")))
        assert c11.groups == 4


class TestStreamingFeasibility:
    @pytest.mark.parametrize("name", [c.name for c in ALL_CONFIGS])
    def test_every_table2_design_keeps_up(self, name):
        """The published designs work, so the in-stream accumulator must
        match the C PLIO arrival rate on every configuration."""
        estimate = estimate_pl_reduction(CharmDesign(config_by_name(name)))
        assert estimate.keeps_up, (
            f"{name}: arrival {estimate.arrival_rate:.3g} > "
            f"accumulate {estimate.accumulate_rate:.3g}"
        )

    def test_utilization_bounded(self):
        for name in ("C4", "C10", "C11"):
            estimate = estimate_pl_reduction(CharmDesign(config_by_name(name)))
            assert 0 < estimate.utilization <= 1.0

    def test_staging_fits_pl_memory(self):
        from repro.hw.specs import VCK5000

        for name in ("C4", "C10", "C11"):
            estimate = estimate_pl_reduction(CharmDesign(config_by_name(name)))
            assert 0 < estimate.bram_staging_bytes < VCK5000.pl_usable_bytes

    def test_more_reduction_groups_more_bram(self):
        c4 = estimate_pl_reduction(CharmDesign(config_by_name("C4")))
        c11 = estimate_pl_reduction(CharmDesign(config_by_name("C11")))
        assert c11.bram_staging_bytes > c4.bram_staging_bytes
