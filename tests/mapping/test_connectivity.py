"""Connectivity-graph generation tests (the Fig. 4 artifact)."""

import pytest

from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.mapping.connectivity import build_connectivity


@pytest.fixture(scope="module")
def c1_graph():
    return build_connectivity(config_by_name("C1"))


class TestStructure:
    def test_c1_has_16_kernels(self, c1_graph):
        assert c1_graph.num_kernels == 16

    def test_c1_cascade_chains(self, c1_graph):
        """Fig. 4: four packs of four engines -> 12 cascade edges."""
        assert len(c1_graph.cascades) == 4 * 3

    def test_c1_plio_count_matches_table2(self, c1_graph):
        assert c1_graph.num_plios == 7
        assert len(c1_graph.plios_for("A")) == 2
        assert len(c1_graph.plios_for("B")) == 4
        assert len(c1_graph.plios_for("C")) == 1

    def test_cascade_edges_stay_within_pack(self, c1_graph):
        for edge in c1_graph.cascades:
            src = next(k for k in c1_graph.kernels if k.name == edge.src)
            dst = next(k for k in c1_graph.kernels if k.name == edge.dst)
            assert (src.im, src.jn) == (dst.im, dst.jn)
            assert dst.lk == src.lk + 1

    def test_every_kernel_fed(self, c1_graph):
        fed = {k for p in c1_graph.plios if p.direction == "in" for k in p.kernels}
        assert fed == {k.name for k in c1_graph.kernels}

    def test_c_ports_read_pack_tails(self, c1_graph):
        g = c1_graph.config.grouping
        for port in c1_graph.plios_for("C"):
            for kernel_name in port.kernels:
                kernel = next(k for k in c1_graph.kernels if k.name == kernel_name)
                assert kernel.lk == g.gk - 1

    @pytest.mark.parametrize("name", [c.name for c in ALL_CONFIGS])
    def test_every_table2_config_builds_and_validates(self, name):
        graph = build_connectivity(config_by_name(name))
        graph.validate()  # counts reconcile with Table II + grouping


class TestRendering:
    def test_summary_mentions_native_size(self, c1_graph):
        text = c1_graph.summary()
        assert "32x128x128" in text and "packs" in text

    def test_dot_is_wellformed(self, c1_graph):
        dot = c1_graph.to_dot()
        assert dot.startswith('digraph "C1"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") >= len(c1_graph.cascades) + 16

    def test_dot_marks_ports(self, c1_graph):
        dot = c1_graph.to_dot()
        assert "invhouse" in dot  # input PLIOs
        assert "house" in dot  # output PLIOs
