"""Packet/circuit/hybrid switching tests (Section IV-A)."""

import pytest

from repro.mapping.switching import (
    PlioConnection,
    SwitchingKind,
    serialization_factor,
)


class TestSerializationFactor:
    def test_packet_counts_every_delivery(self):
        # 4 chunks each fanned to 4 sinks over 1 PLIO: 16 serialized sends
        assert serialization_factor(SwitchingKind.PACKET, 4, 4, 1) == 16

    def test_hybrid_broadcasts_fanout(self):
        assert serialization_factor(SwitchingKind.HYBRID, 4, 4, 1) == 4

    def test_hybrid_parallelises_across_plios(self):
        assert serialization_factor(SwitchingKind.HYBRID, 4, 4, 2) == 2

    def test_circuit_fully_parallel(self):
        assert serialization_factor(SwitchingKind.CIRCUIT, 4, 4, 4) == 1

    def test_circuit_requires_enough_plios(self):
        with pytest.raises(ValueError):
            serialization_factor(SwitchingKind.CIRCUIT, 4, 4, 2)

    def test_rejects_zero_plios(self):
        with pytest.raises(ValueError):
            serialization_factor(SwitchingKind.PACKET, 4, 4, 0)

    def test_packet_worse_or_equal_to_hybrid(self):
        for chunks in (1, 4, 16):
            for fanout in (1, 2, 4):
                for plios in (1, 2, 4):
                    packet = serialization_factor(SwitchingKind.PACKET, chunks, fanout, plios)
                    hybrid = serialization_factor(SwitchingKind.HYBRID, chunks, fanout, plios)
                    assert packet >= hybrid


class TestPlioConnection:
    def test_deliveries(self):
        conn = PlioConnection("A", 2, SwitchingKind.PACKET, 4, 4)
        assert conn.deliveries == 16
        assert conn.serialization == 8

    def test_hybrid_deliveries_equal_chunks(self):
        conn = PlioConnection("A", 2, SwitchingKind.HYBRID, 4, 4)
        assert conn.deliveries == 4

    def test_circuit_validation_at_construction(self):
        with pytest.raises(ValueError):
            PlioConnection("A", 2, SwitchingKind.CIRCUIT, 4, 1)

    def test_rejects_zero_plios(self):
        with pytest.raises(ValueError):
            PlioConnection("A", 0, SwitchingKind.PACKET, 4, 1)
