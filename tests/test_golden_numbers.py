"""Golden-number regression tests.

EXPERIMENTS.md documents the measured value for every reproduced
artifact; these tests pin those exact numbers (tight tolerances) so a
future change cannot silently drift the documented results.  If a test
here fails because of an *intentional* model change, update both the
expected value and EXPERIMENTS.md in the same commit.
"""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.hw.dram import DramModel, DramPorts
from repro.hw.faults import (
    derate_clock,
    derate_dram,
    disable_aie_columns,
    disable_dram_channels,
    surviving_configs,
)
from repro.hw.specs import VCK5000
from repro.hw.interconnect import CommScheme, CommTimingModel
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import reference_schemes
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape

W2048 = GemmShape(2048, 2048, 2048)


def golden(value, expected, rel=0.01):
    assert value == pytest.approx(expected, rel=rel), (
        f"golden number drifted: {value} vs documented {expected}"
    )


class TestKernelGoldens:
    def test_fp32_intrinsic_efficiency(self):
        golden(SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32).efficiency(), 0.920)

    def test_int8_intrinsic_efficiency(self):
        golden(SingleAieGemmKernel(GemmShape(64, 64, 64), Precision.INT8).efficiency(), 0.900)

    def test_fp32_api_performance_drop(self):
        intr = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32).timing().total
        api = SingleAieGemmKernel(
            GemmShape(32, 32, 32), Precision.FP32, style=KernelStyle.API
        ).timing().total
        golden(1 - intr / api, 0.460, rel=0.02)

    def test_fp32_compute_cycles_32cube(self):
        golden(SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32).timing().compute, 4452.0)

    def test_int8_compute_cycles_64cube(self):
        golden(SingleAieGemmKernel(GemmShape(64, 64, 64), Precision.INT8).timing().compute, 2276.0)


class TestDramGoldens:
    def test_2r1w_bandwidth(self):
        golden(DramModel(ports=DramPorts(2, 1)).total_bandwidth(), 20.0e9)

    def test_4r2w_bandwidth(self):
        golden(DramModel(ports=DramPorts(4, 2)).total_bandwidth(), 34.0e9)


class TestEndToEndGoldens:
    def test_c6_2048_hw_seconds(self):
        """EXPERIMENTS.md: 9.21 ms (paper 9.95)."""
        golden(HwSimulator(CharmDesign(config_by_name("C6"))).run(W2048).total_seconds, 9.214e-3)

    def test_c11_2048_hw_seconds(self):
        """EXPERIMENTS.md: 1.05 ms (paper 0.92)."""
        golden(HwSimulator(CharmDesign(config_by_name("C11"))).run(W2048).total_seconds, 1.049e-3)

    def test_c6_model_seconds(self):
        golden(AnalyticalModel(CharmDesign(config_by_name("C6"))).estimate(W2048).total_seconds, 8.869e-3)

    def test_c1_strong_scaling_4096(self):
        """EXPERIMENTS.md Fig. 9 table: 655.0 ms."""
        workload = GemmShape(4096, 4096, 4096)
        golden(HwSimulator(CharmDesign(config_by_name("C1"))).run(workload).total_seconds, 654.97e-3)


class TestInterconnectGoldens:
    def test_fp32_single_buffer_overhead(self):
        """EXPERIMENTS.md: +29.7% (paper +32%)."""
        ratio = CommTimingModel().normalized_to_cascade(
            CommScheme.BUFFER_SINGLE, Precision.FP32, GemmShape.square(32), 16
        )
        golden(ratio, 1.297, rel=0.005)

    def test_int8_via_switch_near(self):
        """EXPERIMENTS.md: 3.25x (paper 3.17-3.3x)."""
        ratio = CommTimingModel().normalized_to_cascade(
            CommScheme.VIA_SWITCH_NEAR, Precision.INT8, GemmShape.square(64), 16
        )
        golden(ratio, 3.253, rel=0.005)


class TestPlioGoldens:
    def test_fp32_scheme_speedup(self):
        """EXPERIMENTS.md: 4.60x pure-ratio (paper 4.63x)."""
        schemes = reference_schemes(config_by_name("C1"))
        golden(
            schemes[0].invocation_cycles() / schemes[-1].invocation_cycles(),
            4.60,
            rel=0.01,
        )

    def test_36_plio_utilization(self):
        golden(reference_schemes(config_by_name("C1"))[-1].array_utilization(), 0.28)


class TestDegradedDeviceGoldens:
    """Table II designs on faulted devices, pinned exactly.

    The 2048-cube estimates are *port*-bottlenecked on the DRAM side,
    so fusing off one or two AIE columns or halving per-channel DRAM
    bandwidth leaves the model's totals bit-identical to the healthy
    device — that invariance is the golden.  Losing whole channels or
    derating the clock does move the totals; those degraded values are
    frozen too.
    """

    HEALTHY = {"C6": 0.008868607108697838, "C5": 0.006662528564705882,
               "C3": 0.015781807336694677}

    def _seconds(self, config, device):
        design = CharmDesign(config_by_name(config), device=device)
        assert design.is_valid()
        return AnalyticalModel(design).estimate(W2048).total_seconds

    @pytest.mark.parametrize("config", ["C6", "C5", "C3"])
    @pytest.mark.parametrize("columns", [1, 2])
    def test_column_harvesting_leaves_2048_estimates_unchanged(self, config, columns):
        device = disable_aie_columns(VCK5000, columns)
        assert self._seconds(config, device) == self.HEALTHY[config]

    @pytest.mark.parametrize("config", ["C6", "C5", "C3"])
    def test_dram_derate_half_leaves_2048_estimates_unchanged(self, config):
        device = derate_dram(VCK5000, 0.5)
        assert self._seconds(config, device) == self.HEALTHY[config]

    def test_two_channels_down(self):
        device = disable_dram_channels(VCK5000, 2)
        golden(self._seconds("C6", device), 0.012667767579286072, rel=1e-9)
        golden(self._seconds("C5", device), 0.009669474447058821, rel=1e-9)
        golden(self._seconds("C3", device), 0.015851198395518205, rel=1e-9)

    def test_clock_derate_80_percent(self):
        device = derate_clock(VCK5000, 0.8)
        golden(self._seconds("C6", device), 0.008872678650578178, rel=1e-9)
        golden(self._seconds("C5", device), 0.006671187764705882, rel=1e-9)
        golden(self._seconds("C3", device), 0.01966606364145658, rel=1e-9)

    def test_survivor_sets_under_column_faults(self):
        assert len(surviving_configs(disable_aie_columns(VCK5000, 1))) == 11
        assert len(surviving_configs(disable_aie_columns(VCK5000, 2))) == 11
        # C6 needs 48 of 50 columns; the third fused column kills it
        assert "C6" not in surviving_configs(disable_aie_columns(VCK5000, 3))
        assert len(surviving_configs(derate_dram(VCK5000, 0.5))) == 11
