"""Execution-platform registry tests (Table I)."""

import pytest

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.sim.platforms import PLATFORMS, platform_by_name, run_on_platform


class TestTable1Registry:
    def test_five_platforms(self):
        assert len(PLATFORMS) == 5

    def test_names_match_paper(self):
        names = {p.name for p in PLATFORMS}
        assert names == {"aiesimulator", "sw_emu", "hw_emu", "hw", "analytical"}

    def test_sw_emu_is_fv_only(self):
        """Table I: sw_emu is functional verification only."""
        sw_emu = platform_by_name("sw_emu")
        assert sw_emu.functional_verification and not sw_emu.performance
        assert sw_emu.usecase == "FV"

    def test_hw_emu_is_slow(self):
        assert not platform_by_name("hw_emu").fast

    def test_analytical_is_perf_only(self):
        analytical = platform_by_name("analytical")
        assert analytical.performance and not analytical.functional_verification
        assert analytical.usecase == "P"

    def test_aiesimulator_scope(self):
        assert "AIE" in platform_by_name("aiesimulator").simulation_target

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            platform_by_name("fpga")


class TestDispatch:
    @pytest.fixture(scope="class")
    def design(self):
        return CharmDesign(config_by_name("C1"))

    def test_hw_run_reports_seconds_and_verification(self, design):
        result = run_on_platform("hw", design, design.native_size.scaled(2, 2, 2))
        assert result.seconds is not None and result.seconds > 0
        assert result.functionally_verified

    def test_sw_emu_reports_no_performance(self, design):
        result = run_on_platform("sw_emu", design, design.native_size)
        assert result.seconds is None
        assert result.functionally_verified

    def test_analytical_skips_verification(self, design):
        result = run_on_platform("analytical", design, design.native_size)
        assert result.seconds is not None
        assert not result.functionally_verified

    def test_aiesimulator_faster_than_hw(self, design):
        """aiesimulator excludes DRAM and setup, so it reports less time
        than the hw platform (the Fig. 5 pink-box effect)."""
        workload = design.native_size.scaled(2, 2, 2)
        aiesim = run_on_platform("aiesimulator", design, workload)
        hw = run_on_platform("hw", design, workload)
        assert aiesim.seconds < hw.seconds

    def test_hw_emu_close_to_hw(self, design):
        workload = design.native_size.scaled(2, 2, 2)
        hw_emu = run_on_platform("hw_emu", design, workload)
        hw = run_on_platform("hw", design, workload)
        assert hw_emu.seconds == pytest.approx(hw.seconds)
