"""Buffered-pipeline engine tests: the semantics everything else rests on."""

import pytest

from repro.sim.engine import PipelineSimulator, PipelineStage


def constant(value):
    return lambda item: value


class TestBasics:
    def test_single_stage(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(2.0))])
        assert pipe.run(3).makespan == pytest.approx(6.0)

    def test_zero_items(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(2.0))])
        assert pipe.run(0).makespan == 0.0

    def test_rejects_empty_pipeline(self):
        with pytest.raises(ValueError):
            PipelineSimulator([])

    def test_rejects_negative_items(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(1.0))])
        with pytest.raises(ValueError):
            pipe.run(-1)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            PipelineStage("s", constant(1.0), slots=0)


class TestDoubleBufferedPipeline:
    def test_steady_state_is_max_of_stage_times(self):
        """Double buffering: throughput = 1/max(stage times) — exactly
        the paper's Eq. 1/2 max() structure."""
        pipe = PipelineSimulator(
            [
                PipelineStage("load", constant(3.0), slots=2),
                PipelineStage("compute", constant(5.0), slots=2),
                PipelineStage("store", constant(2.0), slots=2),
            ]
        )
        n = 50
        result = pipe.run(n)
        # fill (3 + 5 + 2) + (n-1) * max
        assert result.makespan == pytest.approx(10.0 + (n - 1) * 5.0)

    def test_fill_is_first_item_traversal(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.0)), PipelineStage("b", constant(4.0))]
        )
        result = pipe.run(1)
        assert result.makespan == pytest.approx(5.0)


class TestSingleBufferedPipeline:
    def test_single_buffer_serialises_adjacent_stages(self):
        """Section V-G: single buffering serialises producer/consumer."""
        pipe = PipelineSimulator(
            [
                PipelineStage("load", constant(3.0), slots=2),
                PipelineStage("compute", constant(5.0), slots=1),
            ]
        )
        n = 20
        result = pipe.run(n)
        # each load must wait for the previous compute to finish
        assert result.makespan == pytest.approx(3.0 + n * 5.0 + (n - 1) * 3.0)

    def test_single_always_slower_than_double(self):
        def build(slots):
            return PipelineSimulator(
                [
                    PipelineStage("load", constant(3.0), slots=2),
                    PipelineStage("compute", constant(5.0), slots=slots),
                ]
            )

        assert build(1).run(10).makespan > build(2).run(10).makespan

    def test_deep_buffers_behave_like_infinite(self):
        deep = PipelineSimulator(
            [
                PipelineStage("a", constant(1.0)),
                PipelineStage("b", constant(2.0), slots=100),
            ]
        )
        result = deep.run(10)
        assert result.makespan == pytest.approx(1.0 + 10 * 2.0)


class TestVariableService:
    def test_item_dependent_times(self):
        pipe = PipelineSimulator(
            [PipelineStage("s", lambda t: 1.0 if t % 2 == 0 else 3.0)]
        )
        assert pipe.run(4).makespan == pytest.approx(8.0)

    def test_lumpy_stage_with_wide_buffer_absorbed(self):
        """A periodic burst (like the C write-back) hides behind a buffer
        that spans the burst period."""
        burst = lambda t: 8.0 if (t + 1) % 4 == 0 else 0.0
        pipe = PipelineSimulator(
            [
                PipelineStage("work", constant(3.0), slots=2),
                PipelineStage("burst", burst, slots=8),
            ]
        )
        result = pipe.run(16)
        # bursts (2 per period of 12) never block: makespan ~ work-bound
        assert result.makespan == pytest.approx(16 * 3.0 + 8.0, rel=0.05)


class TestBlockingSemantics:
    """Satellite: pin the engine's backpressure rules to hand-computed
    schedules so the vectorized path has an unambiguous oracle."""

    def test_zero_items_empty_rows(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", 1.0), PipelineStage("b", 2.0)]
        )
        result = pipe.run(0)
        assert result.makespan == 0.0
        assert result.end_times == [[], []]
        assert result.start_times == [[], []]

    def test_slots_one_vs_two_makespans(self):
        def build(slots):
            return PipelineSimulator(
                [
                    PipelineStage("produce", 2.0, slots=2),
                    PipelineStage("consume", 3.0, slots=slots),
                ]
            )

        # slots=2 (double buffered): fill 5, then consumer-bound
        assert build(2).run(6).makespan == pytest.approx(5.0 + 5 * 3.0)
        # slots=1 (single buffered): producer waits for the consumer to
        # drain its only slot, so each item costs 2 + 3 after the first
        assert build(1).run(6).makespan == pytest.approx(2.0 + 6 * 3.0 + 5 * 2.0)

    def test_three_stage_backpressure_hand_computed(self):
        """A slow tail stage with slots=1 backpressures through the middle."""
        pipe = PipelineSimulator(
            [
                PipelineStage("a", 1.0, slots=2),
                PipelineStage("b", 1.0, slots=2),
                PipelineStage("c", 4.0, slots=1),
            ]
        )
        result = pipe.run(3)
        # item0 flows freely: a 0-1, b 1-2, c 2-6
        # item1: a 1-2, but b may not begin until c's single slot frees
        #        (b writes into c's buffer): b 6-7, c 7-11
        # item2: a 2-3, b waits for c item1: b 11-12, c 12-16
        assert result.end_times[0] == pytest.approx([1.0, 2.0, 3.0])
        assert result.end_times[1] == pytest.approx([2.0, 7.0, 12.0])
        assert result.end_times[2] == pytest.approx([6.0, 11.0, 16.0])
        assert result.start_times[1] == pytest.approx([1.0, 6.0, 11.0])
        assert result.makespan == pytest.approx(16.0)


class TestVectorizedRun:
    """Tentpole: run(vectorize=True) must be bit-identical to the exact
    event loop for constant-service stages."""

    CASES = [
        [PipelineStage("s", 2.0)],
        [PipelineStage("a", 3.0, slots=2), PipelineStage("b", 5.0, slots=2)],
        [PipelineStage("a", 3.0, slots=2), PipelineStage("b", 5.0, slots=1)],
        [
            PipelineStage("load", 0.7, slots=2),
            PipelineStage("compute", 1.3, slots=2),
            PipelineStage("store", 0.2, slots=2),
        ],
        [
            PipelineStage("a", 1.0, slots=2),
            PipelineStage("b", 1.0, slots=2),
            PipelineStage("c", 4.0, slots=1),
        ],
        [PipelineStage("zero", 0.0), PipelineStage("work", 1.0)],
        [PipelineStage("a", 2.0, slots=1), PipelineStage("b", 3.0, slots=1)],
    ]

    @pytest.mark.parametrize("stages", CASES)
    @pytest.mark.parametrize("num_items", [0, 1, 2, 5, 33, 100, 600])
    def test_bit_identical_to_exact(self, stages, num_items):
        pipe = PipelineSimulator(stages)
        exact = pipe.run(num_items, vectorize=False)
        fast = pipe.run(num_items, vectorize=True)
        assert fast.end_times == exact.end_times  # exact float equality
        assert fast.start_times == exact.start_times
        assert fast.makespan == exact.makespan

    def test_numeric_service_matches_callable_constant(self):
        numeric = PipelineSimulator(
            [PipelineStage("a", 1.5, slots=2), PipelineStage("b", 2.5, slots=2)]
        )
        via_callable = PipelineSimulator(
            [
                PipelineStage("a", constant(1.5), slots=2),
                PipelineStage("b", constant(2.5), slots=2),
            ]
        )
        assert numeric.run(40).end_times == via_callable.run(40).end_times

    def test_auto_mode_matches_forced_exact_at_scale(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", 0.3, slots=2), PipelineStage("b", 0.4, slots=1)]
        )
        # 2000 items crosses VECTORIZE_MIN_ITEMS, so auto vectorizes
        assert pipe.run(2000).end_times == pipe.run(2000, vectorize=False).end_times

    def test_callable_stages_fall_back_to_exact(self):
        pipe = PipelineSimulator(
            [PipelineStage("s", lambda t: 1.0 if t % 2 == 0 else 3.0)]
        )
        assert (
            pipe.run(600, vectorize=True).end_times
            == pipe.run(600, vectorize=False).end_times
        )

    def test_rejects_negative_numeric_service(self):
        with pytest.raises(ValueError):
            PipelineStage("s", -1.0)


class TestResultQueries:
    def test_stage_busy(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(2.0)), PipelineStage("b", constant(1.0))]
        )
        result = pipe.run(5)
        assert result.stage_busy_by_name("a") == pytest.approx(10.0)
        assert result.stage_busy_by_name("b") == pytest.approx(5.0)

    def test_bottleneck_stage(self):
        pipe = PipelineSimulator(
            [PipelineStage("small", constant(1.0)), PipelineStage("big", constant(4.0))]
        )
        assert pipe.run(10).bottleneck_stage() == "big"

    def test_monotone_end_times(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.5)), PipelineStage("b", constant(2.5))]
        )
        result = pipe.run(8)
        for stage_ends in result.end_times:
            assert all(b > a for a, b in zip(stage_ends, stage_ends[1:]))

    def test_items_flow_forward_in_time(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.0)), PipelineStage("b", constant(1.0))]
        )
        result = pipe.run(5)
        for t in range(5):
            assert result.start_times[1][t] >= result.end_times[0][t]


class TestDerated:
    """Pipeline-level degradation: stage-wise service derating."""

    def test_scales_single_stage_makespan(self):
        pipe = PipelineSimulator([PipelineStage("s", 2.0)])
        assert pipe.derated({"s": 2.0}).run(3).makespan == pytest.approx(12.0)

    def test_unnamed_stages_keep_their_service(self):
        pipe = PipelineSimulator([PipelineStage("a", 1.0), PipelineStage("b", 2.0)])
        derated = pipe.derated({"b": 3.0})
        assert derated.stages[0].constant_service == pytest.approx(1.0)
        assert derated.stages[1].constant_service == pytest.approx(6.0)

    def test_original_pipeline_unchanged(self):
        pipe = PipelineSimulator([PipelineStage("s", 1.0)])
        pipe.derated({"s": 5.0})
        assert pipe.stages[0].constant_service == pytest.approx(1.0)

    def test_constants_stay_vectorize_eligible(self):
        pipe = PipelineSimulator([PipelineStage("s", 1.0)]).derated({"s": 2.0})
        assert pipe.stages[0].constant_service is not None
        scalar = pipe.run(64, vectorize=False).makespan
        vectorized = pipe.run(64, vectorize=True).makespan
        assert vectorized == pytest.approx(scalar)

    def test_callable_services_are_wrapped(self):
        pipe = PipelineSimulator([PipelineStage("s", lambda item: 1.0 + item)])
        derated = pipe.derated({"s": 2.0})
        assert derated.stages[0].constant_service is None
        assert derated.stages[0].service_fn()(3) == pytest.approx(8.0)

    def test_unknown_stage_rejected(self):
        pipe = PipelineSimulator([PipelineStage("s", 1.0)])
        with pytest.raises(ValueError, match="unknown pipeline stages"):
            pipe.derated({"ghost": 2.0})

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_nonpositive_factor_rejected(self, factor):
        pipe = PipelineSimulator([PipelineStage("s", 1.0)])
        with pytest.raises(ValueError, match="positive"):
            pipe.derated({"s": factor})
