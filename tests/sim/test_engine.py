"""Buffered-pipeline engine tests: the semantics everything else rests on."""

import pytest

from repro.sim.engine import PipelineSimulator, PipelineStage


def constant(value):
    return lambda item: value


class TestBasics:
    def test_single_stage(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(2.0))])
        assert pipe.run(3).makespan == pytest.approx(6.0)

    def test_zero_items(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(2.0))])
        assert pipe.run(0).makespan == 0.0

    def test_rejects_empty_pipeline(self):
        with pytest.raises(ValueError):
            PipelineSimulator([])

    def test_rejects_negative_items(self):
        pipe = PipelineSimulator([PipelineStage("s", constant(1.0))])
        with pytest.raises(ValueError):
            pipe.run(-1)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            PipelineStage("s", constant(1.0), slots=0)


class TestDoubleBufferedPipeline:
    def test_steady_state_is_max_of_stage_times(self):
        """Double buffering: throughput = 1/max(stage times) — exactly
        the paper's Eq. 1/2 max() structure."""
        pipe = PipelineSimulator(
            [
                PipelineStage("load", constant(3.0), slots=2),
                PipelineStage("compute", constant(5.0), slots=2),
                PipelineStage("store", constant(2.0), slots=2),
            ]
        )
        n = 50
        result = pipe.run(n)
        # fill (3 + 5 + 2) + (n-1) * max
        assert result.makespan == pytest.approx(10.0 + (n - 1) * 5.0)

    def test_fill_is_first_item_traversal(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.0)), PipelineStage("b", constant(4.0))]
        )
        result = pipe.run(1)
        assert result.makespan == pytest.approx(5.0)


class TestSingleBufferedPipeline:
    def test_single_buffer_serialises_adjacent_stages(self):
        """Section V-G: single buffering serialises producer/consumer."""
        pipe = PipelineSimulator(
            [
                PipelineStage("load", constant(3.0), slots=2),
                PipelineStage("compute", constant(5.0), slots=1),
            ]
        )
        n = 20
        result = pipe.run(n)
        # each load must wait for the previous compute to finish
        assert result.makespan == pytest.approx(3.0 + n * 5.0 + (n - 1) * 3.0)

    def test_single_always_slower_than_double(self):
        def build(slots):
            return PipelineSimulator(
                [
                    PipelineStage("load", constant(3.0), slots=2),
                    PipelineStage("compute", constant(5.0), slots=slots),
                ]
            )

        assert build(1).run(10).makespan > build(2).run(10).makespan

    def test_deep_buffers_behave_like_infinite(self):
        deep = PipelineSimulator(
            [
                PipelineStage("a", constant(1.0)),
                PipelineStage("b", constant(2.0), slots=100),
            ]
        )
        result = deep.run(10)
        assert result.makespan == pytest.approx(1.0 + 10 * 2.0)


class TestVariableService:
    def test_item_dependent_times(self):
        pipe = PipelineSimulator(
            [PipelineStage("s", lambda t: 1.0 if t % 2 == 0 else 3.0)]
        )
        assert pipe.run(4).makespan == pytest.approx(8.0)

    def test_lumpy_stage_with_wide_buffer_absorbed(self):
        """A periodic burst (like the C write-back) hides behind a buffer
        that spans the burst period."""
        burst = lambda t: 8.0 if (t + 1) % 4 == 0 else 0.0
        pipe = PipelineSimulator(
            [
                PipelineStage("work", constant(3.0), slots=2),
                PipelineStage("burst", burst, slots=8),
            ]
        )
        result = pipe.run(16)
        # bursts (2 per period of 12) never block: makespan ~ work-bound
        assert result.makespan == pytest.approx(16 * 3.0 + 8.0, rel=0.05)


class TestResultQueries:
    def test_stage_busy(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(2.0)), PipelineStage("b", constant(1.0))]
        )
        result = pipe.run(5)
        assert result.stage_busy_by_name("a") == pytest.approx(10.0)
        assert result.stage_busy_by_name("b") == pytest.approx(5.0)

    def test_bottleneck_stage(self):
        pipe = PipelineSimulator(
            [PipelineStage("small", constant(1.0)), PipelineStage("big", constant(4.0))]
        )
        assert pipe.run(10).bottleneck_stage() == "big"

    def test_monotone_end_times(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.5)), PipelineStage("b", constant(2.5))]
        )
        result = pipe.run(8)
        for stage_ends in result.end_times:
            assert all(b > a for a, b in zip(stage_ends, stage_ends[1:]))

    def test_items_flow_forward_in_time(self):
        pipe = PipelineSimulator(
            [PipelineStage("a", constant(1.0)), PipelineStage("b", constant(1.0))]
        )
        result = pipe.run(5)
        for t in range(5):
            assert result.start_times[1][t] >= result.end_times[0][t]
