"""Streaming serving structures: bit-identity, sketch bounds, SoA traces."""

import math

import numpy as np
import pytest

from repro.sim.serving import _lcg_uniform, generate_trace
from repro.sim.streaming import (
    QuantileSketch,
    SoATrace,
    StreamingServingReport,
    generate_trace_soa,
    splitmix_uniforms,
)
from repro.workloads.gemm import GemmShape

SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 2048, 512),
    GemmShape(2048, 1024, 512),
)


class TestSplitmixUniforms:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345, 2**31, 2**63 - 1])
    def test_bit_identical_to_scalar(self, seed):
        indices = np.arange(512, dtype=np.uint64)
        vectorized = splitmix_uniforms(seed, indices)
        scalar = [_lcg_uniform(seed, index) for index in range(512)]
        assert vectorized.tolist() == scalar  # exact, not approx

    def test_open_interval(self):
        uniforms = splitmix_uniforms(3, np.arange(10_000, dtype=np.uint64))
        assert float(uniforms.min()) > 0.0
        assert float(uniforms.max()) < 1.0

    def test_sparse_indices(self):
        indices = np.asarray([0, 5, 10**12, 2**40], dtype=np.uint64)
        values = splitmix_uniforms(9, indices)
        assert values.tolist() == [_lcg_uniform(9, int(i)) for i in indices]


class TestGenerateTraceSoa:
    def test_bitwise_equal_to_scalar_trace(self):
        scalar = generate_trace(SHAPES, 1000, 0.7e-3, seed=13)
        soa = generate_trace_soa(SHAPES, 1000, 0.7e-3, seed=13)
        assert soa.arrivals.tolist() == [r.arrival for r in scalar]  # exact
        assert [SHAPES[i] for i in soa.shape_ids.tolist()] == [
            r.shape for r in scalar
        ]

    def test_materialize_round_trip(self):
        scalar = generate_trace(SHAPES, 50, 1e-3, seed=4)
        materialized = generate_trace_soa(SHAPES, 50, 1e-3, seed=4).materialize()
        assert materialized == scalar

    def test_duplicate_shapes_preserved(self):
        mix = (SHAPES[0], SHAPES[0], SHAPES[1])
        scalar = generate_trace(mix, 200, 1e-3, seed=2)
        soa = generate_trace_soa(mix, 200, 1e-3, seed=2)
        assert [mix[i] for i in soa.shape_ids.tolist()] == [r.shape for r in scalar]

    def test_validation_mirrors_scalar(self):
        with pytest.raises(ValueError):
            generate_trace_soa(SHAPES, 0, 1e-3)
        with pytest.raises(ValueError):
            generate_trace_soa(SHAPES, 5, 0.0)
        with pytest.raises(ValueError):
            generate_trace_soa([], 5, 1e-3)

    def test_single_request_parity(self):
        (request,) = generate_trace(SHAPES, 1, 1e-3, seed=9)
        soa = generate_trace_soa(SHAPES, 1, 1e-3, seed=9)
        assert soa.arrivals.tolist() == [request.arrival]
        assert SHAPES[int(soa.shape_ids[0])] == request.shape

    def test_empty_trace_rejected_like_scalar(self):
        with pytest.raises(ValueError):
            generate_trace(SHAPES, 0, 1e-3)
        with pytest.raises(ValueError):
            generate_trace_soa(SHAPES, 0, 1e-3)

    @pytest.mark.parametrize("num_requests", [65535, 65536, 65537])
    def test_parity_at_chunk_boundaries(self, num_requests):
        """Sizes straddling ``DISPATCH_CHUNK`` stay bit-identical."""
        scalar = generate_trace(SHAPES, num_requests, 0.5e-3, seed=7)
        soa = generate_trace_soa(SHAPES, num_requests, 0.5e-3, seed=7)
        assert soa.arrivals.tolist() == [r.arrival for r in scalar]
        assert [SHAPES[i] for i in soa.shape_ids.tolist()] == [
            r.shape for r in scalar
        ]


class TestSoATrace:
    def test_len(self):
        assert len(generate_trace_soa(SHAPES, 17, 1e-3)) == 17

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SoATrace(SHAPES, np.asarray([0, 1]), np.asarray([0.0]))

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            SoATrace(SHAPES, np.asarray([3]), np.asarray([0.0]))
        with pytest.raises(ValueError):
            SoATrace(SHAPES, np.asarray([-1]), np.asarray([0.0]))

    def test_rejects_decreasing_arrivals(self):
        with pytest.raises(ValueError):
            SoATrace(SHAPES, np.asarray([0, 0]), np.asarray([2.0, 1.0]))

    def test_rejects_empty_shape_mix(self):
        with pytest.raises(ValueError):
            SoATrace((), np.asarray([], dtype=np.int64), np.asarray([]))


class TestQuantileSketch:
    def test_relative_error_bound_holds(self):
        # the documented contract: every percentile within relative_error
        rng_values = np.abs(np.sin(np.arange(1, 5001, dtype=np.float64))) * 10 + 0.01
        for error in (0.01, 0.05):
            sketch = QuantileSketch(relative_error=error)
            sketch.add_many(rng_values)
            ordered = np.sort(rng_values)
            for percentile in (1, 25, 50, 75, 90, 99, 99.9, 100):
                rank = min(len(ordered), math.ceil(percentile / 100 * len(ordered)))
                exact = float(ordered[rank - 1])
                estimate = sketch.quantile(percentile)
                assert abs(estimate - exact) <= error * exact + 1e-12

    def test_batch_matches_single_queries(self):
        sketch = QuantileSketch()
        sketch.add_many(np.linspace(0.1, 50.0, 777))
        ps = [99, 50, 95, 10]
        assert sketch.quantiles(ps) == [sketch.quantile(p) for p in ps]

    def test_exact_aggregates(self):
        values = np.asarray([0.5, 1.5, 2.5, 10.0])
        sketch = QuantileSketch()
        sketch.add_many(values)
        assert sketch.count == 4
        assert sketch.sum == pytest.approx(values.sum())
        assert sketch.mean() == pytest.approx(values.mean())
        assert sketch.min == 0.5
        assert sketch.max == 10.0

    def test_quantiles_clamped_to_observed_range(self):
        sketch = QuantileSketch(relative_error=0.05)
        sketch.add_many(np.full(100, 3.0))
        assert sketch.quantile(50) == 3.0  # clamp makes constants exact
        assert sketch.quantile(100) == 3.0

    def test_underflow_bucket(self):
        sketch = QuantileSketch(min_value=1e-6)
        sketch.add_many(np.asarray([1e-9, 1e-8, 5.0]))
        assert sketch.quantile(10) <= 1e-6

    def test_merge(self):
        left, right, whole = QuantileSketch(), QuantileSketch(), QuantileSketch()
        a = np.linspace(0.1, 5.0, 300)
        b = np.linspace(4.0, 20.0, 500)
        left.add_many(a)
        right.add_many(b)
        whole.add_many(np.concatenate([a, b]))
        left.merge(right)
        assert left.count == whole.count
        assert left.quantiles([50, 99]) == whole.quantiles([50, 99])

    def test_merge_rejects_mismatched_resolution(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(min_value=0.0)
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add_many(np.asarray([-1.0]))
        with pytest.raises(ValueError):
            sketch.add_many(np.asarray([math.nan]))
        with pytest.raises(ValueError):
            sketch.quantile(50)  # empty
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(0)


class TestStreamingServingReport:
    def _report(self):
        report = StreamingServingReport(["a", "b"])
        report.observe_batch(
            np.asarray([0, 1, 0, 0]),
            np.asarray([0.0, 1.0, 2.0, 3.0]),
            np.asarray([0.0, 1.0, 2.5, 4.0]),
            np.asarray([1.0, 2.0, 4.0, 6.0]),
        )
        return report

    def test_exact_aggregates(self):
        report = self._report()
        assert report.count == 4
        assert report.makespan == 6.0
        assert report.throughput_rps == pytest.approx(4 / 6.0)
        assert report.mean_latency() == pytest.approx((1.0 + 1.0 + 2.0 + 3.0) / 4)
        assert report.mean_queueing_delay() == pytest.approx((0.5 + 1.0) / 4)
        assert report.accelerator_load() == {"a": 3, "b": 1}

    def test_scalar_observe_matches_batch(self):
        batched = self._report()
        scalar = StreamingServingReport(["a", "b"])
        for acc, arrival, start, finish in [
            (0, 0.0, 0.0, 1.0),
            (1, 1.0, 1.0, 2.0),
            (0, 2.0, 2.5, 4.0),
            (0, 3.0, 4.0, 6.0),
        ]:
            scalar.observe(acc, arrival, start, finish)
        assert scalar.as_dict() == batched.as_dict()

    def test_empty_report_raises(self):
        report = StreamingServingReport(["a"])
        with pytest.raises(ValueError, match="no completed requests"):
            report.mean_latency()
        with pytest.raises(ValueError, match="no completed requests"):
            report.latency_percentile(50)
        with pytest.raises(ValueError, match="no completed requests"):
            report.latency_percentiles([50, 99])
        with pytest.raises(ValueError, match="no completed requests"):
            report.mean_queueing_delay()
        assert report.throughput_rps == 0.0
        assert report.accelerator_load() == {}

    def test_accelerator_percentile(self):
        report = self._report()
        assert report.accelerator_percentile("b", 50) == pytest.approx(1.0, rel=0.02)
        with pytest.raises(ValueError):
            StreamingServingReport(["a"]).accelerator_percentile("a", 50)

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError):
            StreamingServingReport([])

    def test_as_dict_keys(self):
        summary = self._report().as_dict()
        for key in ("requests", "makespan", "throughput_rps", "p50", "p99"):
            assert key in summary
