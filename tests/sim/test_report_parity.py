"""Exact vs streaming report parity: identical metric surface.

Satellite regression: downstream consumers (the CLI fault block, the
chaos conformance harness, the metrics exporter) key on
``fault_summary()`` names — the two report flavors must never drift.
"""

import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.serving import ServingSimulator
from repro.sim.streaming import generate_trace_soa
from repro.workloads.gemm import GemmShape

SHAPES = (GemmShape(1024, 1024, 1024), GemmShape(512, 512, 512))
REQUESTS = 300
MEAN_INTERARRIVAL = 0.5e-3


def run_pair(faults=None):
    """The same trace through the exact and the streaming engine."""
    reports = []
    for streaming in (False, True):
        partition = AcceleratorPartition(
            [config_by_name("C5"), config_by_name("C3")]
        )
        simulator = ServingSimulator(partition)
        simulator.prewarm(SHAPES)
        trace = generate_trace_soa(SHAPES, REQUESTS, MEAN_INTERARRIVAL, seed=9)
        reports.append(
            simulator.run(
                trace,
                streaming=streaming,
                faults=faults,
                fault_policy=(
                    FaultPolicy(max_retries=2) if faults is not None else None
                ),
            )
        )
    return reports


def fault_schedule():
    horizon = REQUESTS * MEAN_INTERARRIVAL
    return FaultSchedule.down(
        "C5", 0.1 * horizon, 0.6 * horizon
    ) + FaultSchedule.down("C3", 0.2 * horizon, 0.4 * horizon)


class TestFaultSummaryParity:
    def test_identical_keys_fault_free(self):
        exact, streaming = run_pair()
        assert list(exact.fault_summary()) == list(streaming.fault_summary())

    def test_identical_keys_under_faults(self):
        exact, streaming = run_pair(faults=fault_schedule())
        assert list(exact.fault_summary()) == list(streaming.fault_summary())

    def test_identical_values_under_faults(self):
        exact, streaming = run_pair(faults=fault_schedule())
        a, b = exact.fault_summary(), streaming.fault_summary()
        for key in a:
            assert a[key] == pytest.approx(b[key]), key

    def test_shared_read_api_agrees(self):
        exact, streaming = run_pair()
        assert streaming.count == len(exact.completed)
        assert streaming.makespan == pytest.approx(exact.makespan)
        assert streaming.throughput_rps == pytest.approx(exact.throughput_rps)
        assert streaming.mean_latency() == pytest.approx(exact.mean_latency())

    def test_timeline_only_on_exact_reports(self):
        exact, streaming = run_pair(faults=fault_schedule())
        # the streaming engine's O(1)-memory promise: no per-decision log
        assert not hasattr(streaming, "fault_timeline")
        assert len(exact.fault_timeline) == exact.kills + exact.requeues
