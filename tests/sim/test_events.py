"""Event-simulator tests."""

import pytest

from repro.sim.events import EventSimulator, Task


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            EventSimulator([Task("a", "r", 1.0), Task("a", "r", 1.0)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            EventSimulator([Task("a", "r", 1.0, depends_on=("ghost",))])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("a", "r", -1.0)

    def test_cycle_detected(self):
        tasks = [
            Task("a", "r", 1.0, depends_on=("b",)),
            Task("b", "r", 1.0, depends_on=("a",)),
        ]
        with pytest.raises(ValueError, match="cycle"):
            EventSimulator(tasks).run()


class TestScheduling:
    def test_independent_tasks_on_separate_resources_overlap(self):
        result = EventSimulator(
            [Task("a", "r1", 3.0), Task("b", "r2", 3.0)]
        ).run()
        assert result.makespan == pytest.approx(3.0)

    def test_same_resource_serialises(self):
        result = EventSimulator(
            [Task("a", "r", 3.0), Task("b", "r", 3.0)]
        ).run()
        assert result.makespan == pytest.approx(6.0)

    def test_dependencies_respected(self):
        result = EventSimulator(
            [Task("a", "r1", 2.0), Task("b", "r2", 1.0, depends_on=("a",))]
        ).run()
        assert result.records["b"].start == pytest.approx(2.0)
        assert result.makespan == pytest.approx(3.0)

    def test_diamond_graph(self):
        result = EventSimulator(
            [
                Task("src", "r1", 1.0),
                Task("left", "r1", 2.0, depends_on=("src",)),
                Task("right", "r2", 5.0, depends_on=("src",)),
                Task("sink", "r1", 1.0, depends_on=("left", "right")),
            ]
        ).run()
        assert result.records["sink"].start == pytest.approx(6.0)
        assert result.makespan == pytest.approx(7.0)

    def test_zero_tasks(self):
        assert EventSimulator([]).run().makespan == 0.0


class TestAnalysis:
    def test_resource_utilization(self):
        result = EventSimulator(
            [Task("a", "r1", 4.0), Task("b", "r2", 2.0)]
        ).run()
        assert result.resource_utilization("r1") == pytest.approx(1.0)
        assert result.resource_utilization("r2") == pytest.approx(0.5)

    def test_critical_path(self):
        result = EventSimulator(
            [
                Task("src", "r1", 1.0),
                Task("left", "r1", 2.0, depends_on=("src",)),
                Task("right", "r2", 5.0, depends_on=("src",)),
                Task("sink", "r3", 1.0, depends_on=("left", "right")),
            ]
        ).run()
        assert result.critical_path() == ["src", "right", "sink"]
