"""aiesimulator stand-in tests (kernel + graph simulation)."""

import pytest

from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import reference_schemes
from repro.sim.aiesim import simulate_graph, simulate_kernel
from repro.workloads.gemm import GemmShape


class TestKernelSimulation:
    def test_fp32_32cube_over_90pct_efficiency(self):
        """Fig. 5: intrinsic kernels exceed 90% efficiency."""
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        report = simulate_kernel(kernel, invocations=128)
        assert report.efficiency > 0.90

    def test_api_fp32_efficiency_halved(self):
        intr = simulate_kernel(
            SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32), invocations=64
        )
        api = simulate_kernel(
            SingleAieGemmKernel(
                GemmShape(32, 32, 32), Precision.FP32, style=KernelStyle.API
            ),
            invocations=64,
        )
        assert intr.efficiency / api.efficiency > 1.7

    def test_overlap_reported(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        report = simulate_kernel(kernel, invocations=16)
        assert report.overlap_cycles > 0

    def test_single_buffer_serialises(self):
        db = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        sb = SingleAieGemmKernel(
            GemmShape(32, 32, 32), Precision.FP32, double_buffered=False
        )
        t_db = simulate_kernel(db, invocations=16).total_cycles
        t_sb = simulate_kernel(sb, invocations=16).total_cycles
        assert t_sb > t_db

    def test_per_invocation_converges_to_steady_state(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        short = simulate_kernel(kernel, invocations=2).per_invocation
        long = simulate_kernel(kernel, invocations=256).per_invocation
        assert long < short
        assert long == pytest.approx(kernel.timing().total, rel=0.02)

    def test_infeasible_kernel_rejected(self):
        kernel = SingleAieGemmKernel(GemmShape(256, 256, 256), Precision.FP32)
        with pytest.raises(ValueError):
            simulate_kernel(kernel)

    def test_rejects_zero_invocations(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        with pytest.raises(ValueError):
            simulate_kernel(kernel, invocations=0)

    def test_seconds_conversion(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        report = simulate_kernel(kernel, invocations=8)
        assert report.seconds() == pytest.approx(report.total_cycles / 1.25e9)

    def test_bound_matches_timing_model(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        assert simulate_kernel(kernel).bound == "compute"


class TestGraphSimulation:
    def test_best_scheme_faster_than_worst(self):
        schemes = reference_schemes(config_by_name("C1"))
        worst = simulate_graph(schemes[0], invocations=16)
        best = simulate_graph(schemes[-1], invocations=16)
        assert best.total_cycles < worst.total_cycles

    def test_per_invocation_matches_scheme_period(self):
        scheme = reference_schemes(config_by_name("C1"))[-1]
        report = simulate_graph(scheme, invocations=256)
        assert report.per_invocation == pytest.approx(
            scheme.invocation_cycles(), rel=0.02
        )

    def test_bottleneck_reported(self):
        scheme = reference_schemes(config_by_name("C1"))[0]
        report = simulate_graph(scheme, invocations=4)
        assert report.bottleneck in ("A", "B", "C", "compute")

    def test_rejects_zero_invocations(self):
        scheme = reference_schemes(config_by_name("C1"))[0]
        with pytest.raises(ValueError):
            simulate_graph(scheme, invocations=0)
