"""Chunk-level cluster-simulation tests (Fig. 12's literal claims)."""

import pytest

from repro.kernels.kernel_timing import PLIO_BYTES_PER_CYCLE
from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import reference_schemes
from repro.sim.cluster import simulate_cluster


@pytest.fixture(scope="module")
def c1_schemes():
    return {s.total_plios: s for s in reference_schemes(config_by_name("C1"))}


class TestFig12aLiteral:
    def test_sixteenth_aie_waits_sixteen_steps(self, c1_schemes):
        """Fig. 12(a): with 3 packet-switched PLIOs, the 16th AIE waits
        16 time steps before it can start."""
        report = simulate_cluster(c1_schemes[3])
        chunk_cycles = (
            c1_schemes[3].config.kernel.bytes_b(4) / PLIO_BYTES_PER_CYCLE
        )
        assert report.start_wait_steps(chunk_cycles) == pytest.approx(16.0)

    def test_first_aie_waits_one_step(self, c1_schemes):
        report = simulate_cluster(c1_schemes[3])
        chunk_cycles = c1_schemes[3].config.kernel.bytes_a(4) / PLIO_BYTES_PER_CYCLE
        assert report.first_start == pytest.approx(chunk_cycles)

    def test_all_sixteen_kernels_scheduled(self, c1_schemes):
        report = simulate_cluster(c1_schemes[3])
        assert len(report.start_times) == 16
        assert len(report.pack_done) == 4  # gm * gn packs


class TestSchemeComparison:
    def test_more_plios_start_sooner(self, c1_schemes):
        waits = {
            plios: simulate_cluster(scheme).last_start
            for plios, scheme in c1_schemes.items()
        }
        ordered = [waits[p] for p in sorted(waits)]
        assert all(b <= a for a, b in zip(ordered, ordered[1:]))

    def test_completion_improves_with_plios(self, c1_schemes):
        worst = simulate_cluster(c1_schemes[3]).completion
        best = simulate_cluster(c1_schemes[36]).completion
        assert best < worst

    def test_full_circuit_scheme_starts_everyone_together(self, c1_schemes):
        """Fig. 12(d): one PLIO per AIE — no serialization wait."""
        report = simulate_cluster(c1_schemes[36])
        assert report.last_start == pytest.approx(report.first_start)

    def test_int8_cluster(self):
        schemes = {s.total_plios: s for s in reference_schemes(config_by_name("C7"))}
        minimal = simulate_cluster(schemes[3])
        rich = simulate_cluster(schemes[34])
        assert rich.completion < minimal.completion


class TestDeliveries:
    def test_packet_deliveries_are_unicast(self, c1_schemes):
        report = simulate_cluster(c1_schemes[3])
        assert all(len(d.targets) == 1 for d in report.deliveries)

    def test_hybrid_deliveries_multicast(self, c1_schemes):
        report = simulate_cluster(c1_schemes[7])
        a_deliveries = [d for d in report.deliveries if d.plio.startswith("A")]
        assert all(len(d.targets) == 4 for d in a_deliveries)  # gn = 4

    def test_plio_serialization_no_overlap(self, c1_schemes):
        report = simulate_cluster(c1_schemes[3])
        by_plio: dict[str, list] = {}
        for delivery in report.deliveries:
            by_plio.setdefault(delivery.plio, []).append(delivery)
        for deliveries in by_plio.values():
            deliveries.sort(key=lambda d: d.start)
            for a, b in zip(deliveries, deliveries[1:]):
                assert b.start >= a.end - 1e-9

    def test_kernels_start_after_their_inputs(self, c1_schemes):
        report = simulate_cluster(c1_schemes[7])
        for delivery in report.deliveries:
            for target in delivery.targets:
                assert report.start_times[target] >= delivery.end - 1e-9
