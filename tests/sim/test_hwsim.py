"""HW-platform simulator tests."""

import dataclasses

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape


class TestBasicRuns:
    def test_run_produces_positive_time(self, c6_design, square_2048):
        run = HwSimulator(c6_design).run(square_2048)
        assert run.total_seconds > 0

    def test_includes_setup(self, c1_design):
        run = HwSimulator(c1_design).run(c1_design.native_size)
        assert run.total_seconds > c1_design.device.aie_setup_seconds

    def test_c6_2048_near_paper_9_95ms(self, c6_design, square_2048):
        """Section V-G: C6 double-buffered measures 9.95 ms on hardware."""
        run = HwSimulator(c6_design).run(square_2048)
        assert run.total_seconds == pytest.approx(9.95e-3, rel=0.15)

    def test_c11_2048_near_paper_0_92ms(self, c11_design, square_2048):
        run = HwSimulator(c11_design).run(square_2048)
        assert run.total_seconds == pytest.approx(0.92e-3, rel=0.20)

    def test_throughput_and_efficiency(self, c6_design, square_2048):
        run = HwSimulator(c6_design).run(square_2048)
        assert run.throughput_ops == pytest.approx(
            square_2048.flops / run.total_seconds
        )
        assert 0 < run.efficiency < 1


class TestModelAgreement:
    """Section V-A: the analytical model lands within +/-5% of hardware."""

    @pytest.mark.parametrize("name", [c.name for c in ALL_CONFIGS])
    def test_model_within_5pct_of_hw(self, name, square_2048):
        design = CharmDesign(config_by_name(name))
        _, error = HwSimulator(design).compare_with_model(square_2048)
        assert abs(error) <= 0.05

    def test_model_never_above_hw(self, square_2048):
        """The simulated HW includes effects the model omits, so the
        model under-estimates slightly — as on the real board."""
        for name in ("C5", "C6", "C10", "C11"):
            design = CharmDesign(config_by_name(name))
            run, error = HwSimulator(design).compare_with_model(square_2048)
            assert error <= 0.0


class TestBuffering:
    def test_single_buffering_with_same_plan_slower(self, c6_design, square_2048):
        """Paper: C6 FP32 goes 9.95 -> 14.72 ms with single buffering."""
        plan = c6_design.tile_plan(square_2048)
        double = HwSimulator(c6_design).run(square_2048, plan).total_seconds
        single_plan = dataclasses.replace(plan, double_buffered=False)
        single = (
            HwSimulator(c6_design.with_single_buffering())
            .run(square_2048, single_plan)
            .total_seconds
        )
        ratio = single / double
        assert 1.35 <= ratio <= 1.60  # paper: 1.48x

    def test_single_buffering_retiling_recovers_most_of_the_cost(
        self, c11_design, square_2048
    ):
        """Paper: C11 INT8 improves 0.92 -> 0.77 ms because single
        buffering frees BRAM for larger tiles.  Our DSE's double-buffered
        plan is already traffic-optimal, so re-tiling recovers most (not
        all) of the serialisation cost — the deviation is recorded in
        EXPERIMENTS.md.  Assert the mechanism: re-tiled single buffering
        beats same-tile single buffering and stays close to double."""
        plan_db = c11_design.tile_plan(square_2048)
        double = HwSimulator(c11_design).run(square_2048, plan_db).total_seconds
        single_design = c11_design.with_single_buffering()
        same_plan = dataclasses.replace(plan_db, double_buffered=False)
        single_same = (
            HwSimulator(single_design).run(square_2048, same_plan).total_seconds
        )
        single_retiled = HwSimulator(single_design).run(square_2048).total_seconds
        assert single_retiled < single_same
        assert single_retiled / double <= 1.15
        # and the re-tiled plan genuinely moves fewer DRAM bytes
        retiled_plan = single_design.tile_plan(square_2048)
        assert retiled_plan.traffic().total < plan_db.traffic().total


class TestTrace:
    def test_trace_makespan_matches_run(self, c6_design, square_2048):
        plan = c6_design.tile_plan(square_2048)
        trace = HwSimulator(c6_design).trace(square_2048, plan)
        run = HwSimulator(c6_design).run(square_2048, plan)
        assert trace.makespan == pytest.approx(
            run.total_seconds - c6_design.device.aie_setup_seconds
        )

    def test_double_buffering_overlap_visible(self, c6_design, square_2048):
        trace = HwSimulator(c6_design).trace(square_2048)
        assert trace.overlap_seconds("load", "aie") > 0

    def test_single_buffering_reduces_overlap(self, c6_design, square_2048):
        plan = c6_design.tile_plan(square_2048)
        double = HwSimulator(c6_design).trace(square_2048, plan)
        single_design = c6_design.with_single_buffering()
        single_plan = dataclasses.replace(plan, double_buffered=False)
        single = HwSimulator(single_design).trace(square_2048, single_plan)
        assert (
            single.overlap_seconds("load", "aie")
            < 0.2 * double.overlap_seconds("load", "aie")
        )

    def test_gantt_renders(self, c6_design, square_2048):
        trace = HwSimulator(c6_design).trace(square_2048)
        text = trace.gantt(width=40)
        assert "load" in text and "aie" in text and "store" in text


class TestScalingShapes:
    def test_strong_scaling_decreases_through_c4(self):
        """Fig. 9: latency decreases steeply while compute-bound."""
        workload = GemmShape(4096, 4096, 4096)
        times = [
            HwSimulator(CharmDesign(config_by_name(name))).run(workload).total_seconds
            for name in ("C1", "C2", "C3", "C4", "C5")
        ]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_int8_strong_scaling_monotone(self):
        workload = GemmShape(4096, 4096, 4096)
        times = [
            HwSimulator(CharmDesign(config_by_name(name))).run(workload).total_seconds
            for name in ("C7", "C8", "C9", "C10", "C11")
        ]
        # non-increasing within 5% tolerance at the memory-bound tail
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.05

    def test_weak_scaling_increases(self):
        """Fig. 10: native-size runs get slower as configs grow."""
        from repro.mapping.configs import FP32_CONFIGS

        times = [
            HwSimulator(CharmDesign(c)).run(c.native_size).total_seconds
            for c in FP32_CONFIGS
        ]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_bottleneck_shifts_to_memory_for_big_configs(self, square_2048):
        small = HwSimulator(CharmDesign(config_by_name("C1"))).run(square_2048)
        large = HwSimulator(CharmDesign(config_by_name("C6"))).run(square_2048)
        assert str(small.bottleneck) in ("aie",)
        assert str(large.bottleneck) in ("load_a", "load_b", "store_c")
