"""Functional (numerics) simulation tests: the mapping computes correct GEMMs."""

import numpy as np
import pytest

from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.sim.functional import FunctionalGemm
from repro.workloads.gemm import GemmShape


class TestCorrectness:
    @pytest.mark.parametrize("name", ["C1", "C4", "C7", "C8"])
    def test_native_multiple_workloads(self, name):
        design = CharmDesign(config_by_name(name))
        runner = FunctionalGemm(design, seed=7)
        workload = design.native_size.scaled(2, 2, 2)
        result = runner.run(workload)
        assert result.correct, result.max_abs_error

    def test_int8_exact(self):
        design = CharmDesign(config_by_name("C7"))
        result = FunctionalGemm(design, seed=1).run(design.native_size.scaled(2, 1, 2))
        assert result.max_abs_error == 0.0

    def test_padded_workload(self):
        """Workloads misaligned with the native size are padded and still
        produce correct (unpadded) results."""
        design = CharmDesign(config_by_name("C1"))
        result = FunctionalGemm(design, seed=2).run(GemmShape(100, 300, 200))
        assert result.correct

    def test_workload_smaller_than_native(self):
        design = CharmDesign(config_by_name("C1"))
        result = FunctionalGemm(design, seed=3).run(GemmShape(10, 20, 30))
        assert result.correct

    def test_explicit_inputs(self):
        design = CharmDesign(config_by_name("C1"))
        workload = design.native_size
        a = np.ones((workload.m, workload.k), dtype=np.float32)
        b = np.ones((workload.k, workload.n), dtype=np.float32)
        result = FunctionalGemm(design).run(workload, a, b)
        assert result.correct

    def test_shape_mismatch_rejected(self):
        design = CharmDesign(config_by_name("C1"))
        workload = design.native_size
        a = np.ones((3, 3), dtype=np.float32)
        b = np.ones((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            FunctionalGemm(design).run(workload, a, b)


class TestDataflowAccounting:
    def test_invocation_count_matches_plan(self):
        design = CharmDesign(config_by_name("C1"))
        workload = design.native_size.scaled(2, 2, 2)
        plan = design.tile_plan(workload)
        result = FunctionalGemm(design).run(workload, plan=plan)
        assert result.kernel_invocations == plan.total_native_tiles

    def test_cascade_adds_counted(self):
        design = CharmDesign(config_by_name("C1"))  # gk = 4: 3 adds per chain
        result = FunctionalGemm(design).run(design.native_size)
        g = design.config.grouping
        assert result.cascade_adds == g.gm * g.gn * (g.gk - 1)

    def test_deterministic_by_seed(self):
        design = CharmDesign(config_by_name("C1"))
        r1 = FunctionalGemm(design, seed=5).run(design.native_size)
        r2 = FunctionalGemm(design, seed=5).run(design.native_size)
        assert r1.max_abs_error == r2.max_abs_error

    def test_make_inputs_dtypes(self):
        fp32 = FunctionalGemm(CharmDesign(config_by_name("C1")))
        a, b = fp32.make_inputs(GemmShape(8, 8, 8))
        assert a.dtype == np.float32
        int8 = FunctionalGemm(CharmDesign(config_by_name("C7")))
        a, b = int8.make_inputs(GemmShape(8, 8, 8))
        assert a.dtype == np.int8
