"""Sharded serving: trace partitioning, fleet merges, process pools.

The pooled modes (fork/spawn) are asserted byte-identical to the
``inline`` reference path, which is itself asserted byte-identical to
unsharded in-process runs over the same sub-traces — so the whole
cluster layer is pinned to the single-process engines the conformance
suite already guarantees.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.obs.metrics import GLOBAL_METRICS
from repro.perf.metrics import GLOBAL_STATS
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.cluster_serving import (
    FleetReport,
    ShardedServingCluster,
    resolve_start_method,
    serve_sharded,
)
from repro.sim.serving import ServingSimulator, load_sweep
from repro.sim.streaming import (
    StreamingServingReport,
    generate_trace_shard,
    generate_trace_soa,
    shard_arrival_offsets,
    shard_bounds,
)
from repro.workloads.gemm import GemmShape

SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 512, 512),
    GemmShape(2048, 1024, 512),
)
MEAN_INTERARRIVAL = 5e-4

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def simulator():
    partition = AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3")]
    )
    sim = ServingSimulator(partition)
    sim.prewarm(SHAPES)
    return sim


class TestShardBounds:
    @pytest.mark.parametrize(
        "num_requests,shards", [(1, 1), (7, 3), (1000, 4), (65537, 8), (10, 40)]
    )
    def test_contiguous_even_cover(self, num_requests, shards):
        bounds = shard_bounds(num_requests, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == num_requests
        sizes = []
        for (lo, hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert hi == next_lo
        for lo, hi in bounds:
            assert hi > lo
            sizes.append(hi - lo)
        assert max(sizes) - min(sizes) <= 1
        assert len(bounds) == min(shards, num_requests)

    def test_validation(self):
        with pytest.raises(ValueError, match="request"):
            shard_bounds(0, 2)
        with pytest.raises(ValueError, match="shard"):
            shard_bounds(10, 0)


class TestTracePartitionDeterminism:
    """Satellite: concatenated shard traces == the full SoA trace, bitwise."""

    @pytest.mark.parametrize(
        "seed,num_requests,shards",
        [(0, 1, 1), (0, 7, 3), (1, 1000, 4), (2, 65537, 2), (3, 50000, 8)],
    )
    def test_concatenation_byte_identical(self, seed, num_requests, shards):
        full = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=seed)
        bounds = shard_bounds(num_requests, shards)
        offsets = shard_arrival_offsets(
            num_requests, MEAN_INTERARRIVAL, seed, bounds
        )
        arrivals, shape_ids = [], []
        for index, (lo, hi) in enumerate(bounds):
            shard = generate_trace_shard(
                SHAPES,
                num_requests,
                MEAN_INTERARRIVAL,
                seed,
                lo=lo,
                hi=hi,
                arrival_offset=offsets[index],
            )
            assert shard.shapes == full.shapes
            arrivals.append(shard.arrivals)
            shape_ids.append(shard.shape_ids)
        assert np.concatenate(arrivals).tobytes() == full.arrivals.tobytes()
        assert np.concatenate(shape_ids).tobytes() == full.shape_ids.tobytes()

    def test_boundary_offsets_are_previous_shard_last_arrival(self):
        num_requests, shards, seed = 4096, 5, 9
        full = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=seed)
        bounds = shard_bounds(num_requests, shards)
        offsets = shard_arrival_offsets(
            num_requests, MEAN_INTERARRIVAL, seed, bounds
        )
        assert offsets[0] == 0.0
        for index, (lo, _) in enumerate(bounds):
            if index:
                # the carry is bitwise the full trace's arrival at lo - 1
                assert offsets[index] == full.arrivals[lo - 1]

    def test_shard_without_offset_diverges_after_first_shard(self):
        """The carry is load-bearing: dropping it breaks the identity."""
        num_requests, seed = 1000, 4
        full = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=seed)
        lo, hi = shard_bounds(num_requests, 2)[1]
        naked = generate_trace_shard(
            SHAPES, num_requests, MEAN_INTERARRIVAL, seed, lo=lo, hi=hi
        )
        assert naked.arrivals.tobytes() != full.arrivals[lo:hi].tobytes()

    def test_shard_validation(self):
        with pytest.raises(ValueError, match="slice"):
            generate_trace_shard(SHAPES, 10, 1e-3, 0, lo=5, hi=5)
        with pytest.raises(ValueError, match="slice"):
            generate_trace_shard(SHAPES, 10, 1e-3, 0, lo=0, hi=11)
        with pytest.raises(ValueError, match="request"):
            generate_trace_shard(SHAPES, 0, 1e-3, 0, lo=0, hi=0)


def _report_from(latencies, names=("a", "b"), accelerator=0, start=100.0):
    report = StreamingServingReport(list(names))
    for offset, latency in enumerate(latencies):
        arrival = start + offset
        report.observe(accelerator, arrival, arrival, arrival + latency)
    return report


class TestStreamingReportMerge:
    def test_disjoint_streams_merge_exactly(self):
        left = _report_from([0.5, 1.0, 2.0], accelerator=0)
        right = _report_from([4.0, 8.0], accelerator=1, start=200.0)
        merged = left.merge(right)
        assert merged is left
        assert merged.count == 5
        assert merged.replicas == 2
        assert merged.makespan == max(left.makespan, right.makespan)
        assert merged.accelerator_load() == {"a": 3, "b": 2}
        assert merged.mean_latency() == pytest.approx((0.5 + 1 + 2 + 4 + 8) / 5)
        # merged sketch == a sketch over the union stream
        union = _report_from([0.5, 1.0, 2.0, 4.0, 8.0])
        assert merged.latency_percentiles([50, 99]) == union.latency_percentiles(
            [50, 99]
        )

    def test_merge_validation(self):
        report = _report_from([1.0])
        with pytest.raises(ValueError, match="itself"):
            report.merge(report)
        with pytest.raises(ValueError, match="quantile_error"):
            report.merge(StreamingServingReport(["a", "b"], quantile_error=0.05))
        with pytest.raises(ValueError, match="accelerator names"):
            report.merge(StreamingServingReport(["x"]))

    def test_fault_accounting_sums_and_fleet_availability(self):
        left = _report_from([1.0] * 4)
        left.record_fault_metadata(
            shed_count=1, kills=2, total_retries=3, requeues=1,
            fault_events=["e1", "e2"], downtime={"a": 2.0},
        )
        right = _report_from([1.0] * 4)
        right.record_fault_metadata(
            shed_count=2, kills=1, total_retries=0, requeues=0,
            fault_events=["e3"], downtime={"a": 1.0, "b": 0.5},
        )
        horizon = left.makespan + right.makespan
        merged = left.merge(right)
        assert merged.shed_count == 3 and merged.kills == 3
        assert merged.total_retries == 3 and merged.requeues == 1
        assert len(merged.fault_events) == 3
        assert merged.downtime == {"a": 3.0, "b": 0.5}
        # availability reads as fleet-seconds: downtime over summed makespans
        assert merged.availability()["a"] == pytest.approx(1.0 - 3.0 / horizon)

    def test_as_dict_gains_replicas_only_when_merged(self):
        solo = _report_from([1.0])
        assert "replicas" not in solo.as_dict()
        merged = _report_from([1.0]).merge(_report_from([2.0]))
        assert merged.as_dict()["replicas"] == 2

    def test_merge_of_merged_reports_counts_all_replicas(self):
        a = _report_from([1.0]).merge(_report_from([2.0]))
        b = _report_from([3.0]).merge(_report_from([4.0]))
        fleet = a.merge(b)
        assert fleet.replicas == 4
        assert fleet.count == 4


class TestInlineCluster:
    def test_fleet_counts_and_shard_identity(self, simulator):
        num_requests, shards, seed = 12000, 4, 7
        fleet = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="inline",
            keep_shard_reports=True,
        )
        assert isinstance(fleet, FleetReport)
        assert fleet.report.count == num_requests
        assert fleet.report.replicas == shards
        assert fleet.shards == shards
        assert sum(fleet.report.accelerator_load().values()) == num_requests
        # per-shard dispatch byte-identical to unsharded sub-trace runs
        offsets = shard_arrival_offsets(
            num_requests, MEAN_INTERARRIVAL, seed, fleet.bounds
        )
        for index, (lo, hi) in enumerate(fleet.bounds):
            sub = generate_trace_shard(
                SHAPES, num_requests, MEAN_INTERARRIVAL, seed,
                lo=lo, hi=hi, arrival_offset=offsets[index],
            )
            reference = simulator.run(sub, streaming=True)
            assert (
                reference.as_dict() == fleet.shard_reports[index].as_dict()
            ), f"shard {index} diverged from its unsharded reference"

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_merged_percentiles_within_bound_of_shard_union(
        self, simulator, shards
    ):
        num_requests, seed, error = 6000, 5, 0.01
        fleet = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="inline",
            quantile_error=error,
        )
        # exact latencies of the same per-shard runs (non-streaming)
        offsets = shard_arrival_offsets(
            num_requests, MEAN_INTERARRIVAL, seed, fleet.bounds
        )
        latencies = []
        for index, (lo, hi) in enumerate(fleet.bounds):
            sub = generate_trace_shard(
                SHAPES, num_requests, MEAN_INTERARRIVAL, seed,
                lo=lo, hi=hi, arrival_offset=offsets[index],
            )
            exact = simulator.run(sub)
            latencies.extend(c.latency for c in exact.completed)
        ordered = np.sort(np.asarray(latencies))
        for percentile in (50.0, 95.0, 99.0):
            rank = min(len(ordered), int(np.ceil(percentile / 100 * len(ordered))))
            exact_value = float(ordered[rank - 1])
            estimate = fleet.report.latency_percentile(percentile)
            assert abs(estimate - exact_value) <= error * exact_value

    def test_shards_clamped_to_trace_length(self, simulator):
        fleet = serve_sharded(
            simulator, SHAPES, 5, MEAN_INTERARRIVAL, shards=16,
            start_method="inline",
        )
        assert fleet.shards == 5
        assert fleet.report.count == 5

    def test_single_shard_matches_unsharded_run(self, simulator):
        num_requests, seed = 3000, 2
        fleet = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=1, seed=seed, start_method="inline",
        )
        full = simulator.run(
            generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=seed),
            streaming=True,
        )
        assert fleet.report.as_dict() == full.as_dict()

    def test_faults_compose_across_shards(self, simulator):
        schedule = FaultSchedule.down("C5", 0.3, 0.9) + FaultSchedule.degraded(
            "C3", 0.5, 1.5, factor=2.0
        )
        policy = FaultPolicy(max_retries=2)
        fleet = serve_sharded(
            simulator, SHAPES, 6000, MEAN_INTERARRIVAL, shards=3, seed=11,
            start_method="inline", faults=schedule, fault_policy=policy,
            keep_shard_reports=True,
        )
        summary = fleet.report.fault_summary()
        assert summary["completed"] + summary["shed"] == 6000
        for name, down in fleet.report.downtime.items():
            assert down == pytest.approx(
                sum(r.downtime.get(name, 0.0) for r in fleet.shard_reports)
            )
        assert fleet.fault_stats.windows == 2 * fleet.shards
        for up in summary["availability"].values():
            assert 0.0 <= up <= 1.0

    def test_rejects_bad_configuration(self, simulator):
        with pytest.raises(ValueError, match="shard"):
            ShardedServingCluster(simulator, SHAPES, shards=0)
        with pytest.raises(ValueError, match="scan"):
            ShardedServingCluster(simulator, SHAPES, shards=2, dispatch="scan")
        with pytest.raises(ValueError, match="shape"):
            ShardedServingCluster(simulator, [], shards=2)
        with pytest.raises(ValueError, match="start_method"):
            resolve_start_method("thread")

    def test_fleet_report_as_dict(self, simulator):
        fleet = serve_sharded(
            simulator, SHAPES, 100, MEAN_INTERARRIVAL, shards=2,
            start_method="inline", keep_shard_reports=True,
        )
        out = fleet.as_dict()
        assert out["shards"] == 2
        assert out["start_method"] == "inline"
        assert out["fleet"]["requests"] == 100
        assert len(out["per_shard"]) == 2
        assert out["bounds"] == [[0, 50], [50, 100]]


class TestProcessPools:
    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_fork_pool_matches_inline(self, simulator):
        num_requests, shards, seed = 8000, 4, 7
        fork = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="fork", max_workers=2,
            keep_shard_reports=True,
        )
        inline = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="inline",
            keep_shard_reports=True,
        )
        assert fork.report.as_dict() == inline.report.as_dict()
        for left, right in zip(fork.shard_reports, inline.shard_reports):
            assert left.as_dict() == right.as_dict()
        assert fork.stats.cache_hits == inline.stats.cache_hits

    def test_spawn_pool_matches_inline(self, simulator):
        num_requests, shards, seed = 2000, 2, 3
        spawn = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="spawn", max_workers=2,
        )
        inline = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=seed, start_method="inline",
        )
        assert spawn.report.as_dict() == inline.report.as_dict()

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_pool_reuse_across_serves(self, simulator):
        with ShardedServingCluster(
            simulator, SHAPES, shards=2, start_method="fork", max_workers=2
        ) as cluster:
            cluster.warm(3000, MEAN_INTERARRIVAL, seed=0)
            first = cluster.serve(3000, MEAN_INTERARRIVAL, seed=0)
            again = cluster.serve(3000, MEAN_INTERARRIVAL, seed=0)
            other_seed = cluster.serve(3000, MEAN_INTERARRIVAL, seed=1)
        assert first.report.as_dict() == again.report.as_dict()
        assert other_seed.report.as_dict() != first.report.as_dict()

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_faulted_fork_matches_inline(self, simulator):
        schedule = FaultSchedule.down("C5", 0.2, 0.8)
        kwargs = dict(
            shards=3, seed=13, faults=schedule,
            fault_policy=FaultPolicy(max_retries=1),
        )
        fork = serve_sharded(
            simulator, SHAPES, 4000, MEAN_INTERARRIVAL,
            start_method="fork", max_workers=2, **kwargs,
        )
        inline = serve_sharded(
            simulator, SHAPES, 4000, MEAN_INTERARRIVAL,
            start_method="inline", **kwargs,
        )
        assert fork.report.as_dict() == inline.report.as_dict()
        assert fork.fault_stats.as_dict() == inline.fault_stats.as_dict()


class TestCrossProcessStatsPublication:
    """Satellite: worker-side registries surface in the parent."""

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_parent_registries_reflect_worker_stats(self, simulator):
        num_requests, shards = 6000, 3
        GLOBAL_STATS.reset()
        GLOBAL_METRICS.reset()
        serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=7, start_method="fork", max_workers=2,
        )
        # every dispatched request is a service-cache hit in some worker;
        # without the dump/merge round trip the parent would see none
        assert GLOBAL_STATS.total.cache_hits >= num_requests
        assert GLOBAL_STATS.batches >= shards
        snapshot = GLOBAL_METRICS.snapshot()
        hits = snapshot["repro_eval_cache_hits_total"]["values"][0]["value"]
        assert hits >= num_requests

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_parent_sees_worker_fault_stats(self, simulator):
        GLOBAL_STATS.reset()
        GLOBAL_METRICS.reset()
        serve_sharded(
            simulator, SHAPES, 3000, MEAN_INTERARRIVAL, shards=2, seed=1,
            start_method="fork", max_workers=2,
            faults=FaultSchedule.down("C5", 0.2, 0.6),
            fault_policy=FaultPolicy(max_retries=1),
        )
        assert GLOBAL_STATS.fault_runs == 2
        assert GLOBAL_STATS.faults.windows == 2
        snapshot = GLOBAL_METRICS.snapshot()
        windows = snapshot["repro_fault_windows_total"]["values"][0]["value"]
        assert windows == 2

    def test_inline_publishes_natively_without_double_count(self, simulator):
        GLOBAL_STATS.reset()
        fleet = serve_sharded(
            simulator, SHAPES, 3000, MEAN_INTERARRIVAL, shards=2, seed=1,
            start_method="inline",
        )
        # the fleet's own stats equal what landed in the parent registry:
        # inline publishes natively, so a dump/merge round trip on top
        # would show up here as a doubled count
        assert fleet.stats.cache_hits >= 3000
        assert GLOBAL_STATS.total.cache_hits == fleet.stats.cache_hits


class TestLoadSweepSharded:
    def test_sharded_sweep_points_well_formed(self, simulator):
        result = load_sweep(
            simulator,
            SHAPES,
            [500.0, 1000.0],
            num_requests=400,
            shards=2,
            start_method="inline",
        )
        assert len(result.points) == 2
        for point in result.points:
            assert point.num_requests == 400
            assert point.achieved_rps > 0
            assert point.p99 >= point.p50

    def test_sharded_sweep_rejects_bad_shards(self, simulator):
        with pytest.raises(ValueError, match="shard"):
            load_sweep(simulator, SHAPES, [500.0], num_requests=100, shards=0)
