"""Unit tests for the fault-schedule data model and the chaos generator."""

import pytest

from repro.hw.faults import FaultError, derate_clock
from repro.hw.specs import VCK5000
from repro.sim.chaos import (
    DEFAULT_FAULT_POLICY,
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
    FaultWindow,
    RecoveryEvent,
    chaos_schedule,
    parse_fault_spec,
)

ACCS = ["C5", "C3"]


class TestFaultWindow:
    def test_down_window(self):
        window = FaultWindow("C5", 0.1, 0.2, "down")
        assert window.duration() == pytest.approx(0.1)
        assert window.detail == "down"

    def test_degraded_factor_detail(self):
        window = FaultWindow("C5", 0.0, 1.0, "degraded", factor=2.5)
        assert window.detail == "2.5x slower"

    def test_degraded_device_detail_uses_device_name(self):
        device = derate_clock(VCK5000, 0.8)
        window = FaultWindow("C5", 0.0, 1.0, "degraded", device=device)
        assert window.detail == device.name

    def test_label_overrides_detail(self):
        window = FaultWindow("C5", 0.0, 1.0, "down", label="maintenance")
        assert window.detail == "maintenance"

    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultError, match="fault kind"):
            FaultWindow("C5", 0.0, 1.0, "broken")

    @pytest.mark.parametrize("start,end", [(-0.1, 1.0), (0.5, 0.5), (1.0, 0.5)])
    def test_rejects_bad_interval(self, start, end):
        with pytest.raises(FaultError, match="start < end"):
            FaultWindow("C5", start, end, "down")

    def test_down_takes_no_modifiers(self):
        with pytest.raises(FaultError, match="neither factor nor device"):
            FaultWindow("C5", 0.0, 1.0, "down", factor=2.0)

    def test_degraded_needs_exactly_one_modifier(self):
        with pytest.raises(FaultError, match="exactly one"):
            FaultWindow("C5", 0.0, 1.0, "degraded")
        with pytest.raises(FaultError, match="exactly one"):
            FaultWindow("C5", 0.0, 1.0, "degraded", factor=2.0, device=VCK5000)

    @pytest.mark.parametrize("factor", [0.5, 0.99, float("nan")])
    def test_degraded_factor_must_be_at_least_one(self, factor):
        with pytest.raises(FaultError, match="factor"):
            FaultWindow("C5", 0.0, 1.0, "degraded", factor=factor)


class TestFaultSchedule:
    def test_orders_windows_by_start(self):
        schedule = FaultSchedule.down("C5", 0.5, 0.6) + FaultSchedule.down(
            "C3", 0.1, 0.2
        )
        assert [w.start for w in schedule.windows] == [0.1, 0.5]
        assert len(schedule) == 2
        assert schedule.accelerators() == ("C3", "C5")
        assert not schedule.is_empty
        assert FaultSchedule(()).is_empty

    def test_rejects_overlap_on_same_accelerator(self):
        with pytest.raises(FaultError, match="overlapping"):
            FaultSchedule.down("C5", 0.0, 0.5) + FaultSchedule.down("C5", 0.4, 0.6)

    def test_allows_overlap_across_accelerators(self):
        schedule = FaultSchedule.down("C5", 0.0, 0.5) + FaultSchedule.down(
            "C3", 0.4, 0.6
        )
        assert len(schedule) == 2

    def test_allows_touching_windows(self):
        schedule = FaultSchedule.down("C5", 0.0, 0.5) + FaultSchedule.down(
            "C5", 0.5, 0.6
        )
        assert schedule.for_accelerator("C5")[1].start == 0.5

    def test_events_pair_onset_and_clearance(self):
        schedule = FaultSchedule.down("C5", 0.1, 0.2)
        events = schedule.events()
        assert [type(e) for e in events] == [FaultEvent, RecoveryEvent]
        assert events[0].time == 0.1 and events[1].time == 0.2
        assert events[0].accelerator == "C5"

    def test_transitions_are_sorted_unique(self):
        schedule = FaultSchedule.down("C5", 0.1, 0.3) + FaultSchedule.down(
            "C3", 0.3, 0.5
        )
        assert schedule.transitions() == (0.1, 0.3, 0.5)

    def test_downtime_clips_to_horizon_and_skips_degraded(self):
        schedule = (
            FaultSchedule.down("C5", 0.1, 0.3)
            + FaultSchedule.down("C5", 0.8, 1.2)
            + FaultSchedule.degraded("C3", 0.0, 1.0, factor=2.0)
        )
        downtime = schedule.downtime(1.0)
        assert downtime["C5"] == pytest.approx(0.2 + 0.2)
        assert "C3" not in downtime
        assert schedule.downtime(0.0) == {"C5": 0.0}

    def test_equality_is_structural(self):
        assert FaultSchedule.down("C5", 0.1, 0.2) == FaultSchedule.down(
            "C5", 0.1, 0.2
        )
        assert FaultSchedule.down("C5", 0.1, 0.2) != FaultSchedule.down(
            "C3", 0.1, 0.2
        )


class TestFaultPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = FaultPolicy(
            max_retries=5, backoff_base=1e-3, backoff_factor=2.0, backoff_cap=3e-3
        )
        assert policy.backoff(1) == pytest.approx(1e-3)
        assert policy.backoff(2) == pytest.approx(2e-3)
        assert policy.backoff(3) == pytest.approx(3e-3)
        assert policy.backoff(4) == pytest.approx(3e-3)

    def test_backoff_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            DEFAULT_FAULT_POLICY.backoff(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base": 1.0, "backoff_cap": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestChaosSchedule:
    def test_deterministic_per_seed(self):
        first = chaos_schedule(ACCS, 1.0, seed=7)
        second = chaos_schedule(ACCS, 1.0, seed=7)
        assert first == second

    def test_seed_changes_schedule(self):
        assert chaos_schedule(ACCS, 1.0, seed=1) != chaos_schedule(ACCS, 1.0, seed=2)

    def test_windows_stay_inside_horizon(self):
        schedule = chaos_schedule(ACCS, 0.5, seed=3, outages_per_accelerator=4)
        assert schedule.accelerators() == ("C3", "C5")
        for window in schedule.windows:
            assert 0.0 <= window.start < window.end <= 0.5 + 1e-12

    def test_degraded_windows_use_device_injectors_when_given(self):
        schedule = chaos_schedule(ACCS, 1.0, seed=9, device=VCK5000, down_fraction=0.0)
        assert schedule.windows
        for window in schedule.windows:
            assert window.kind == "degraded"
            assert window.device is not None and window.factor is None

    def test_factor_windows_without_device(self):
        schedule = chaos_schedule(ACCS, 1.0, seed=9, down_fraction=0.0)
        for window in schedule.windows:
            assert window.factor is not None and 1.5 <= window.factor < 3.5

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"accelerators": ACCS, "horizon": 0.0}, "horizon"),
            ({"accelerators": ACCS, "horizon": 1.0, "outages_per_accelerator": 0}, "outage"),
            ({"accelerators": [], "horizon": 1.0}, "accelerator"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(FaultError, match=match):
            chaos_schedule(**kwargs)


class TestParseFaultSpec:
    def test_down_window(self):
        schedule = parse_fault_spec("C5:down:0.05:0.10", ACCS)
        assert len(schedule) == 1
        window = schedule.windows[0]
        assert (window.accelerator, window.kind) == ("C5", "down")
        assert (window.start, window.end) == (0.05, 0.10)

    def test_slow_window(self):
        window = parse_fault_spec("C3:slow:2.5:0.1:0.3", ACCS).windows[0]
        assert window.kind == "degraded" and window.factor == 2.5

    def test_comma_separated_windows_compose(self):
        schedule = parse_fault_spec(
            "C5:down:0.0:0.1, C3:slow:2.0:0.2:0.4", ACCS
        )
        assert len(schedule) == 2

    @pytest.mark.parametrize("kind,value", [("clock", "0.8"), ("dram", "1"),
                                            ("drambw", "0.5"), ("cols", "2")])
    def test_device_windows(self, kind, value):
        spec = f"C5:{kind}:{value}:0.1:0.4"
        window = parse_fault_spec(spec, ACCS, device=VCK5000).windows[0]
        assert window.kind == "degraded"
        assert window.device is not None
        assert window.detail == f"{kind} {value}"

    def test_device_windows_need_a_device(self):
        with pytest.raises(FaultError, match="need a device"):
            parse_fault_spec("C5:clock:0.8:0.1:0.4", ACCS)

    def test_chaos_mode(self):
        schedule = parse_fault_spec("chaos", ACCS, seed=4, horizon=2.0)
        assert schedule == chaos_schedule(ACCS, 2.0, seed=4)
        bigger = parse_fault_spec("chaos:5", ACCS, seed=4, horizon=2.0)
        assert bigger == chaos_schedule(ACCS, 2.0, seed=4, outages_per_accelerator=5)

    def test_bad_chaos_count(self):
        with pytest.raises(FaultError, match="chaos outage count"):
            parse_fault_spec("chaos:lots", ACCS)

    def test_unknown_accelerator_lists_partition(self):
        with pytest.raises(FaultError, match="partition has"):
            parse_fault_spec("C9:down:0.0:0.1", ACCS)

    @pytest.mark.parametrize(
        "spec",
        ["", "C5:down:0.1", "C5:down:a:b", "C5:frob:2:0.1:0.2", "C5:slow:x:0.1:0.2"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultError):
            parse_fault_spec(spec, ACCS)
