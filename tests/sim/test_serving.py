"""Serving-simulation tests: request streams, queueing, tail latency."""

import numpy as np
import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.perf.metrics import GLOBAL_STATS
from repro.sim.chaos import FaultError, FaultPolicy, FaultSchedule
from repro.sim.serving import (
    Request,
    ServingReport,
    ServingSimulator,
    generate_trace,
    load_sweep,
)
from repro.sim.streaming import generate_trace_soa
from repro.workloads.gemm import GemmShape

SHAPES = [GemmShape(1024, 1024, 1024), GemmShape(512, 2048, 512)]


class FakePartition:
    """A stub partition: hand-authored service times, ValueError = infeasible.

    Lets the dispatch tests cover wide partitions (heap territory) and
    infeasible (accelerator, shape) pairs, which the paper's real C5/C3
    partitions never produce for reasonable shapes.
    """

    def __init__(self, services):
        # services: {name: {shape: seconds | None}}
        self.designs = {name: None for name in services}
        self._services = services

    def estimate_on(self, accelerator, shape):
        service = self._services[accelerator].get(shape)
        if service is None:
            raise ValueError(f"{accelerator} cannot serve {shape}")
        return service


def _wide_fake_partition(num_accelerators=9):
    """A 9-wide partition (heap dispatch territory) with one shape
    infeasible on some accelerators and varied service times."""
    services = {}
    for index in range(num_accelerators):
        per_shape = {
            SHAPES[0]: 0.001 * (1 + (index * 7) % 5),
            SHAPES[1]: 0.002 * (1 + (index * 3) % 4),
        }
        if index % 3 == 0:
            per_shape[SHAPES[1]] = None  # infeasible on every third acc
        services[f"acc{index}"] = per_shape
    return FakePartition(services)


def _decisions(report):
    return [(c.accelerator, c.start, c.finish) for c in report.completed]


@pytest.fixture(scope="module")
def partition():
    return AcceleratorPartition([config_by_name("C5"), config_by_name("C3")])


@pytest.fixture(scope="module")
def simulator(partition):
    return ServingSimulator(partition)


class TestTraceGeneration:
    def test_deterministic(self):
        a = generate_trace(SHAPES, 20, 1e-3, seed=7)
        b = generate_trace(SHAPES, 20, 1e-3, seed=7)
        assert [(r.arrival, r.shape) for r in a] == [(r.arrival, r.shape) for r in b]

    def test_seed_changes_trace(self):
        a = generate_trace(SHAPES, 20, 1e-3, seed=1)
        b = generate_trace(SHAPES, 20, 1e-3, seed=2)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_arrivals_increase(self):
        trace = generate_trace(SHAPES, 50, 1e-3, seed=0)
        arrivals = [r.arrival for r in trace]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_interarrival_approximate(self):
        trace = generate_trace(SHAPES, 2000, 1e-3, seed=3)
        mean = trace[-1].arrival / len(trace)
        assert mean == pytest.approx(1e-3, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(SHAPES, 0, 1e-3)
        with pytest.raises(ValueError):
            generate_trace(SHAPES, 5, 0)
        with pytest.raises(ValueError):
            generate_trace([], 5, 1e-3)


class TestServing:
    def test_all_requests_complete(self, simulator):
        trace = generate_trace(SHAPES, 30, 5e-3, seed=0)
        report = simulator.run(trace)
        assert len(report.completed) == 30

    def test_latency_at_least_service_time(self, simulator, partition):
        trace = generate_trace(SHAPES, 10, 1.0, seed=0)  # no queueing
        report = simulator.run(trace)
        for completed in report.completed:
            _, best = partition.best_accelerator(completed.request.shape)
            assert completed.latency >= best * 0.99
            assert completed.queueing_delay == pytest.approx(0.0, abs=1e-9)

    def test_overload_builds_queueing_delay(self, simulator):
        light = simulator.run(generate_trace(SHAPES, 40, 1.0, seed=0))
        heavy = simulator.run(generate_trace(SHAPES, 40, 1e-4, seed=0))
        assert heavy.latency_percentile(95) > 3 * light.latency_percentile(95)

    def test_percentiles_ordered(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 60, 1e-3, seed=1))
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        p99 = report.latency_percentile(99)
        assert p50 <= p95 <= p99

    def test_load_spreads_across_accelerators(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 60, 1e-4, seed=2))
        load = report.accelerator_load()
        assert len(load) == 2  # both accelerators pick up work under load

    def test_throughput_positive(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 30, 1e-3, seed=0))
        assert report.throughput_rps > 0

    def test_percentile_validation(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 5, 1e-3, seed=0))
        with pytest.raises(ValueError):
            report.latency_percentile(0)


class TestDispatchEngines:
    """All engines must make byte-identical decisions (same accelerator,
    same float start/finish) — the tentpole's core contract."""

    def test_table_and_heap_match_scan(self, simulator):
        trace = generate_trace(SHAPES, 400, 0.3e-3, seed=5)
        expected = _decisions(simulator.run(trace, dispatch="scan"))
        assert _decisions(simulator.run(trace, dispatch="table")) == expected
        assert _decisions(simulator.run(trace, dispatch="heap")) == expected
        assert _decisions(simulator.run(trace, dispatch="auto")) == expected

    def test_soa_trace_matches_list_trace(self, simulator):
        scalar = generate_trace(SHAPES, 300, 1e-3, seed=9)
        soa = generate_trace_soa(SHAPES, 300, 1e-3, seed=9)
        assert _decisions(simulator.run(soa)) == _decisions(
            simulator.run(scalar, dispatch="scan")
        )

    def test_wide_partition_with_infeasible_pairs(self):
        fake = _wide_fake_partition()
        simulator = ServingSimulator(fake)
        trace = generate_trace(SHAPES, 500, 0.5e-3, seed=3)
        expected = _decisions(simulator.run(trace, dispatch="scan"))
        assert _decisions(simulator.run(trace, dispatch="table")) == expected
        assert _decisions(simulator.run(trace, dispatch="heap")) == expected
        # 9 accelerators: auto routes through the heap
        assert _decisions(simulator.run(trace, dispatch="auto")) == expected

    def test_single_accelerator_partition(self):
        fake = FakePartition({"only": {SHAPES[0]: 0.002, SHAPES[1]: 0.003}})
        simulator = ServingSimulator(fake)
        trace = generate_trace(SHAPES, 120, 1e-3, seed=1)
        expected = _decisions(simulator.run(trace, dispatch="scan"))
        assert _decisions(simulator.run(trace, dispatch="table")) == expected
        assert _decisions(simulator.run(trace, dispatch="heap")) == expected

    def test_small_chunks_do_not_change_decisions(self, simulator):
        trace = generate_trace(SHAPES, 150, 1e-3, seed=2)
        expected = _decisions(simulator.run(trace, dispatch="scan"))
        assert _decisions(simulator.run(trace, chunk_size=7)) == expected

    def test_unserveable_shape_raises(self):
        fake = FakePartition({"a": {SHAPES[0]: 0.001, SHAPES[1]: None}})
        simulator = ServingSimulator(fake)
        trace = generate_trace(SHAPES, 50, 1e-3, seed=0)
        with pytest.raises(ValueError, match="no accelerator can serve"):
            simulator.run(trace)
        with pytest.raises(ValueError, match="no accelerator can serve"):
            simulator.run(trace, dispatch="scan")

    def test_empty_trace_rejected(self, simulator):
        with pytest.raises(ValueError, match="empty trace"):
            simulator.run([])
        with pytest.raises(ValueError, match="empty trace"):
            simulator.run([], streaming=True)

    def test_kwargs_validation(self, simulator):
        trace = generate_trace(SHAPES, 5, 1e-3, seed=0)
        with pytest.raises(ValueError, match="dispatch"):
            simulator.run(trace, dispatch="warp")
        with pytest.raises(ValueError, match="streaming"):
            simulator.run(trace, streaming=True, dispatch="scan")


class TestStreamingRun:
    def test_streaming_aggregates_match_exact(self, simulator):
        trace = generate_trace_soa(SHAPES, 600, 0.5e-3, seed=4)
        exact = simulator.run(trace)
        streaming = simulator.run(trace, streaming=True)
        assert streaming.count == len(exact.completed)
        assert streaming.makespan == exact.makespan
        assert streaming.throughput_rps == exact.throughput_rps
        assert streaming.accelerator_load() == exact.accelerator_load()
        assert streaming.mean_latency() == pytest.approx(
            exact.mean_latency(), rel=1e-12
        )

    def test_streaming_percentiles_within_documented_bound(self, simulator):
        """Property: sketched percentiles within quantile_error of exact."""
        for seed in (0, 1, 2):
            trace = generate_trace_soa(SHAPES, 800, 0.4e-3, seed=seed)
            exact = simulator.run(trace)
            for error in (0.01, 0.05):
                streaming = simulator.run(
                    trace, streaming=True, quantile_error=error
                )
                for p in (50, 90, 95, 99):
                    reference = exact.latency_percentile(p)
                    estimate = streaming.latency_percentile(p)
                    assert abs(estimate - reference) <= error * reference + 1e-12

    def test_streaming_constant_memory_chunks(self, simulator):
        trace = generate_trace_soa(SHAPES, 300, 1e-3, seed=6)
        small = simulator.run(trace, streaming=True, chunk_size=11)
        large = simulator.run(trace, streaming=True)
        small_summary = small.as_dict()
        large_summary = large.as_dict()
        # chunked summation reorders the float adds; everything else is exact
        for summary in (small_summary, large_summary):
            summary["mean_latency"] = round(summary["mean_latency"], 12)
            summary["mean_queueing_delay"] = round(
                summary["mean_queueing_delay"], 12
            )
        assert small_summary == large_summary


class TestReportSatellites:
    def _report(self, simulator):
        return simulator.run(generate_trace(SHAPES, 80, 1e-3, seed=1))

    def test_batch_percentiles_match_singles(self, simulator):
        report = self._report(simulator)
        assert report.latency_percentiles([50, 95, 99]) == [
            report.latency_percentile(p) for p in (50, 95, 99)
        ]

    def test_sorted_latencies_cached(self, simulator):
        report = self._report(simulator)
        report.latency_percentile(50)
        first = report._sorted_latencies
        report.latency_percentile(99)
        assert report._sorted_latencies is first  # one sort, ever

    def test_empty_report_mean_latency_raises_value_error(self):
        report = ServingReport(completed=[])
        with pytest.raises(ValueError, match="no completed requests"):
            report.mean_latency()
        with pytest.raises(ValueError, match="no completed requests"):
            report.latency_percentile(50)
        with pytest.raises(ValueError, match="no completed requests"):
            report.latency_percentiles([50, 99])

    def test_percentile_validation_in_batch(self, simulator):
        report = self._report(simulator)
        with pytest.raises(ValueError):
            report.latency_percentiles([50, 0])


class TestRunRecordsStats:
    def test_run_publishes_to_global_stats(self):
        fake = FakePartition({"a": {SHAPES[0]: 0.001, SHAPES[1]: 0.002}})
        simulator = ServingSimulator(fake)
        trace = generate_trace(SHAPES, 40, 1e-3, seed=0)
        GLOBAL_STATS.reset()
        simulator.run(trace)
        assert GLOBAL_STATS.batches == 1
        assert GLOBAL_STATS.total.cache_hits > 0
        assert GLOBAL_STATS.total.wall_seconds > 0

    def test_prewarm_then_run_all_hits_with_infeasible(self):
        fake = _wide_fake_partition()
        simulator = ServingSimulator(fake)
        simulator.prewarm(SHAPES)
        misses_before = simulator.stats.cache_misses
        simulator.run(generate_trace(SHAPES, 60, 1e-3, seed=0))
        assert simulator.stats.cache_misses == misses_before

    def test_wall_seconds_accumulates(self, simulator):
        before = simulator.stats.wall_seconds
        simulator.run(generate_trace(SHAPES, 30, 1e-3, seed=0))
        assert simulator.stats.wall_seconds > before


class TestLoadSweep:
    def _simulator(self):
        return ServingSimulator(
            FakePartition(
                {
                    "a": {SHAPES[0]: 0.004, SHAPES[1]: 0.006},
                    "b": {SHAPES[0]: 0.008, SHAPES[1]: 0.012},
                }
            )
        )

    def test_finds_knee_and_exits_early(self):
        result = load_sweep(self._simulator(), SHAPES, num_requests=400, seed=1)
        assert result.knee_rps is not None
        assert result.early_exit
        assert result.plateau_rps is not None
        # the knee is where achieved stops tracking offered
        knee_point = next(
            p for p in result.points if p.offered_rps == result.knee_rps
        )
        assert knee_point.saturation < 0.95

    def test_explicit_loads_below_capacity_have_no_knee(self):
        result = load_sweep(
            self._simulator(), SHAPES, [5.0, 10.0], num_requests=200, seed=0
        )
        assert result.knee_rps is None
        assert not result.early_exit
        assert len(result.points) == 2

    def test_latency_grows_past_the_knee(self):
        result = load_sweep(self._simulator(), SHAPES, num_requests=400, seed=1)
        assert result.points[-1].p99 > result.points[0].p99

    def test_exact_mode_sweep(self):
        streaming = load_sweep(
            self._simulator(), SHAPES, [50.0], num_requests=200, streaming=True
        )
        exact = load_sweep(
            self._simulator(), SHAPES, [50.0], num_requests=200, streaming=False
        )
        assert exact.points[0].achieved_rps == streaming.points[0].achieved_rps

    def test_rows_shape(self):
        result = load_sweep(self._simulator(), SHAPES, [50.0], num_requests=100)
        (row,) = result.rows()
        assert set(row) == {
            "offered_rps", "achieved_rps", "saturation", "p50_ms", "p99_ms",
            "mean_ms",
        }

    def test_plateau_detected_once_and_skips_remaining_points(self):
        loads = [20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0]
        result = load_sweep(
            self._simulator(), SHAPES, loads, num_requests=400, seed=1
        )
        assert result.early_exit
        assert len(result.points) < len(loads)  # tail skipped
        # the evaluated points are a strict prefix of the ramp, in order
        assert [p.offered_rps for p in result.points] == loads[: len(result.points)]
        # the knee is exactly the first saturating point
        saturating = [
            p.offered_rps for p in result.points if p.saturation < 1.0 - 0.05
        ]
        assert result.knee_rps == saturating[0]
        # the plateau is the last evaluated point's ceiling
        assert result.plateau_rps == result.points[-1].achieved_rps

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_jobs_byte_equal_to_serial(self, jobs):
        loads = [20.0, 40.0, 80.0, 160.0, 320.0, 640.0]
        serial = load_sweep(
            self._simulator(), SHAPES, loads, num_requests=300, seed=4, jobs=1
        )
        threaded = load_sweep(
            self._simulator(), SHAPES, loads, num_requests=300, seed=4, jobs=jobs
        )
        assert threaded == serial  # dataclass equality: exact floats

    def test_validation(self):
        simulator = self._simulator()
        with pytest.raises(ValueError):
            load_sweep(simulator, SHAPES, [])
        with pytest.raises(ValueError):
            load_sweep(simulator, SHAPES, [-5.0])
        unserveable = ServingSimulator(
            FakePartition({"a": {SHAPES[0]: None, SHAPES[1]: None}})
        )
        with pytest.raises(ValueError, match="no accelerator"):
            load_sweep(unserveable, SHAPES)


class TestReleaseTimesInEventSim:
    def test_release_delays_start(self):
        from repro.sim.events import EventSimulator, Task

        result = EventSimulator([Task("late", "r", 1.0, release=5.0)]).run()
        assert result.records["late"].start == pytest.approx(5.0)

    def test_release_with_dependencies(self):
        from repro.sim.events import EventSimulator, Task

        result = EventSimulator(
            [
                Task("a", "r", 1.0),
                Task("b", "r", 1.0, depends_on=("a",), release=10.0),
            ]
        ).run()
        assert result.records["b"].start == pytest.approx(10.0)

    def test_negative_release_rejected(self):
        from repro.sim.events import Task

        with pytest.raises(ValueError):
            Task("x", "r", 1.0, release=-1.0)


class TestFaultInjection:
    """Fault-schedule semantics: kills, retries, failover, shedding."""

    def _single(self, service=0.001):
        return FakePartition({"solo": {SHAPES[0]: service}})

    def _request(self, arrival=0.0, request_id=0, shape=SHAPES[0]):
        return Request(request_id=request_id, shape=shape, arrival=arrival)

    def test_down_window_kills_retries_and_completes(self):
        # execution starts at 0, the window at 0.0005 kills it; the retry
        # lands inside the window (requeued to its end) and completes
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.down("solo", 0.0005, 0.002)
        report = simulator.run([self._request()], faults=faults)
        assert len(report.completed) == 1
        completed = report.completed[0]
        assert completed.retries == 1
        assert completed.start == pytest.approx(0.002)
        assert completed.finish == pytest.approx(0.003)
        assert report.kills == 1
        assert report.requeues == 1
        assert report.total_retries == 1
        assert report.shed == []

    def test_retry_budget_exhausted_sheds_with_accounting(self):
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.down("solo", 0.0005, 0.002)
        policy = FaultPolicy(max_retries=0)
        report = simulator.run([self._request()], faults=faults, fault_policy=policy)
        assert report.completed == []
        assert len(report.shed) == 1
        shed = report.shed[0]
        assert shed.reason == "retry_budget_exhausted"
        assert shed.retries == 1
        assert shed.time == pytest.approx(0.0005)
        assert report.request_availability == 0.0
        assert report.fault_summary()["shed"] == 1

    def test_killed_request_fails_over_to_survivor(self):
        partition = FakePartition(
            {"fast": {SHAPES[0]: 0.001}, "slow": {SHAPES[0]: 0.005}}
        )
        simulator = ServingSimulator(partition)
        faults = FaultSchedule.down("fast", 0.0005, 0.1)
        report = simulator.run([self._request()], faults=faults)
        completed = report.completed[0]
        assert completed.accelerator == "slow"
        assert completed.retries == 1

    def test_service_resolved_at_admission(self):
        # the degraded window fixes the service time at admission even
        # though the window ends mid-execution
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.degraded("solo", 0.0, 0.0015, factor=10.0)
        report = simulator.run([self._request()], faults=faults)
        assert report.completed[0].finish == pytest.approx(0.01)

    def test_degraded_window_slows_service(self):
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.degraded("solo", 0.0, 10.0, factor=3.0)
        report = simulator.run([self._request()], faults=faults)
        assert report.completed[0].finish == pytest.approx(0.003)
        assert report.kills == 0

    def test_device_window_needs_real_designs(self):
        from repro.hw.specs import VCK5000

        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.degraded("solo", 0.0, 1.0, device=VCK5000)
        with pytest.raises(ValueError, match="factor="):
            simulator.run([self._request()], faults=faults)

    def test_unknown_accelerator_in_schedule_rejected(self):
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.down("ghost", 0.0, 1.0)
        with pytest.raises(FaultError, match="ghost"):
            simulator.run([self._request()], faults=faults)

    def test_downtime_and_availability_reported(self):
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.down("solo", 0.0005, 0.002)
        report = simulator.run([self._request()], faults=faults)
        assert report.downtime["solo"] == pytest.approx(0.0015)
        availability = report.availability()
        assert availability["solo"] == pytest.approx(1 - 0.0015 / 0.003)
        assert report.request_availability == 1.0

    def test_fault_events_attached_in_time_order(self):
        simulator = ServingSimulator(self._single())
        faults = FaultSchedule.down("solo", 0.0005, 0.002)
        report = simulator.run([self._request()], faults=faults)
        assert [e.time for e in report.fault_events] == [0.0005, 0.002]

    def test_fault_summary_keys(self):
        simulator = ServingSimulator(self._single())
        report = simulator.run(
            [self._request()], faults=FaultSchedule.down("solo", 5.0, 6.0)
        )
        assert set(report.fault_summary()) == {
            "completed", "shed", "kills", "retries", "requeues",
            "fault_events", "request_availability", "availability",
        }

    def test_streaming_run_carries_fault_metadata(self):
        partition = _wide_fake_partition(4)
        trace = generate_trace(SHAPES, 200, 1e-3, seed=2)
        faults = FaultSchedule.down("acc1", 0.01, 0.05)
        exact = ServingSimulator(partition).run(trace, faults=faults)
        stream = ServingSimulator(partition).run(
            trace, streaming=True, faults=faults
        )
        assert stream.fault_summary() == exact.fault_summary()
        assert "faults" in stream.as_dict()

    def test_streaming_fault_free_dict_has_no_faults_key(self):
        partition = _wide_fake_partition(4)
        trace = generate_trace(SHAPES, 50, 1e-3, seed=2)
        stream = ServingSimulator(partition).run(trace, streaming=True)
        assert "faults" not in stream.as_dict()

    def test_load_sweep_accepts_faults(self):
        partition = _wide_fake_partition(4)
        simulator = ServingSimulator(partition)
        faults = FaultSchedule.down("acc1", 0.0, 0.02)
        result = load_sweep(
            simulator,
            SHAPES,
            [1000.0],
            num_requests=100,
            faults=faults,
            fault_policy=FaultPolicy(max_retries=2),
        )
        assert len(result.points) == 1

    def test_zero_requests_with_faults_rejected(self):
        simulator = ServingSimulator(self._single())
        with pytest.raises(ValueError, match="empty trace"):
            simulator.run([], faults=FaultSchedule.down("solo", 0.0, 1.0))
