"""Serving-simulation tests: request streams, queueing, tail latency."""

import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.sim.serving import ServingSimulator, generate_trace
from repro.workloads.gemm import GemmShape

SHAPES = [GemmShape(1024, 1024, 1024), GemmShape(512, 2048, 512)]


@pytest.fixture(scope="module")
def partition():
    return AcceleratorPartition([config_by_name("C5"), config_by_name("C3")])


@pytest.fixture(scope="module")
def simulator(partition):
    return ServingSimulator(partition)


class TestTraceGeneration:
    def test_deterministic(self):
        a = generate_trace(SHAPES, 20, 1e-3, seed=7)
        b = generate_trace(SHAPES, 20, 1e-3, seed=7)
        assert [(r.arrival, r.shape) for r in a] == [(r.arrival, r.shape) for r in b]

    def test_seed_changes_trace(self):
        a = generate_trace(SHAPES, 20, 1e-3, seed=1)
        b = generate_trace(SHAPES, 20, 1e-3, seed=2)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_arrivals_increase(self):
        trace = generate_trace(SHAPES, 50, 1e-3, seed=0)
        arrivals = [r.arrival for r in trace]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_interarrival_approximate(self):
        trace = generate_trace(SHAPES, 2000, 1e-3, seed=3)
        mean = trace[-1].arrival / len(trace)
        assert mean == pytest.approx(1e-3, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(SHAPES, 0, 1e-3)
        with pytest.raises(ValueError):
            generate_trace(SHAPES, 5, 0)
        with pytest.raises(ValueError):
            generate_trace([], 5, 1e-3)


class TestServing:
    def test_all_requests_complete(self, simulator):
        trace = generate_trace(SHAPES, 30, 5e-3, seed=0)
        report = simulator.run(trace)
        assert len(report.completed) == 30

    def test_latency_at_least_service_time(self, simulator, partition):
        trace = generate_trace(SHAPES, 10, 1.0, seed=0)  # no queueing
        report = simulator.run(trace)
        for completed in report.completed:
            _, best = partition.best_accelerator(completed.request.shape)
            assert completed.latency >= best * 0.99
            assert completed.queueing_delay == pytest.approx(0.0, abs=1e-9)

    def test_overload_builds_queueing_delay(self, simulator):
        light = simulator.run(generate_trace(SHAPES, 40, 1.0, seed=0))
        heavy = simulator.run(generate_trace(SHAPES, 40, 1e-4, seed=0))
        assert heavy.latency_percentile(95) > 3 * light.latency_percentile(95)

    def test_percentiles_ordered(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 60, 1e-3, seed=1))
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        p99 = report.latency_percentile(99)
        assert p50 <= p95 <= p99

    def test_load_spreads_across_accelerators(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 60, 1e-4, seed=2))
        load = report.accelerator_load()
        assert len(load) == 2  # both accelerators pick up work under load

    def test_throughput_positive(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 30, 1e-3, seed=0))
        assert report.throughput_rps > 0

    def test_percentile_validation(self, simulator):
        report = simulator.run(generate_trace(SHAPES, 5, 1e-3, seed=0))
        with pytest.raises(ValueError):
            report.latency_percentile(0)


class TestReleaseTimesInEventSim:
    def test_release_delays_start(self):
        from repro.sim.events import EventSimulator, Task

        result = EventSimulator([Task("late", "r", 1.0, release=5.0)]).run()
        assert result.records["late"].start == pytest.approx(5.0)

    def test_release_with_dependencies(self):
        from repro.sim.events import EventSimulator, Task

        result = EventSimulator(
            [
                Task("a", "r", 1.0),
                Task("b", "r", 1.0, depends_on=("a",), release=10.0),
            ]
        ).run()
        assert result.records["b"].start == pytest.approx(10.0)

    def test_negative_release_rejected(self):
        from repro.sim.events import Task

        with pytest.raises(ValueError):
            Task("x", "r", 1.0, release=-1.0)
