"""Execution-trace tests."""

import pytest

from repro.sim.engine import PipelineSimulator, PipelineStage
from repro.sim.trace import ExecutionTrace


def run_pipeline(slots=2, n=6):
    pipe = PipelineSimulator(
        [
            PipelineStage("load", lambda t: 2.0, slots=2),
            PipelineStage("compute", lambda t: 3.0, slots=slots),
            PipelineStage("store", lambda t: 1.0, slots=2),
        ]
    )
    return pipe.run(n)


class TestEvents:
    def test_event_count(self):
        trace = ExecutionTrace(run_pipeline(n=4))
        assert len(trace.events) == 3 * 4

    def test_zero_duration_events_dropped(self):
        pipe = PipelineSimulator(
            [
                PipelineStage("work", lambda t: 1.0),
                PipelineStage("maybe", lambda t: 0.0 if t % 2 else 1.0),
            ]
        )
        trace = ExecutionTrace(pipe.run(4))
        assert len(trace.events_for("maybe")) == 2

    def test_events_within_makespan(self):
        trace = ExecutionTrace(run_pipeline())
        for event in trace.events:
            assert 0 <= event.start <= event.end <= trace.makespan


class TestOverlapAnalysis:
    def test_double_buffering_shows_overlap(self):
        trace = ExecutionTrace(run_pipeline(slots=2))
        assert trace.overlap_seconds("load", "compute") > 0

    def test_single_buffering_removes_overlap(self):
        """The Section V-G story, visible in the trace."""
        double = ExecutionTrace(run_pipeline(slots=2))
        single = ExecutionTrace(run_pipeline(slots=1))
        assert single.overlap_seconds("load", "compute") < double.overlap_seconds(
            "load", "compute"
        )

    def test_bottleneck_stage_highest_utilization(self):
        trace = ExecutionTrace(run_pipeline(n=12))
        utils = {s: trace.stage_utilization(s) for s in ("load", "compute", "store")}
        assert max(utils, key=utils.get) == "compute"
        assert utils["compute"] > 0.8

    def test_idle_plus_busy_is_makespan(self):
        trace = ExecutionTrace(run_pipeline())
        busy = sum(e.duration for e in trace.events_for("store"))
        assert busy + trace.idle_seconds("store") == pytest.approx(trace.makespan)


class TestGantt:
    def test_gantt_has_row_per_stage(self):
        trace = ExecutionTrace(run_pipeline())
        lines = trace.gantt().splitlines()
        assert len(lines) == 4  # 3 stages + axis
        assert lines[0].strip().startswith("load")

    def test_gantt_width_respected(self):
        trace = ExecutionTrace(run_pipeline())
        line = trace.gantt(width=40).splitlines()[0]
        assert len(line.split("|")[1]) == 40

    def test_empty_trace(self):
        pipe = PipelineSimulator([PipelineStage("s", lambda t: 1.0)])
        trace = ExecutionTrace(pipe.run(0))
        assert trace.gantt() == "(empty trace)"

    def test_width_must_be_positive(self):
        """Satellite fix: width <= 0 used to silently break the bars."""
        trace = ExecutionTrace(run_pipeline())
        for width in (0, -1, -72):
            with pytest.raises(ValueError, match="width"):
                trace.gantt(width=width)

    def test_width_one_renders(self):
        trace = ExecutionTrace(run_pipeline())
        lines = trace.gantt(width=1).splitlines()
        assert len(lines) == 4
        assert all(len(line.split("|")[1]) == 1 for line in lines[:3])


class TestEventsJson:
    def test_records_mirror_events(self):
        trace = ExecutionTrace(run_pipeline(n=4))
        records = trace.events_json()
        assert len(records) == len(trace.events)
        for record, event in zip(records, trace.events):
            assert record == {
                "stage": event.stage,
                "item": event.item,
                "start": event.start,
                "end": event.end,
                "duration": event.duration,
            }

    def test_json_serializable(self):
        import json

        trace = ExecutionTrace(run_pipeline())
        json.dumps(trace.events_json())

    def test_shared_source_with_chrome_exporter(self):
        """The exporter consumes events_json directly (satellite goal)."""
        from repro.obs.export import ChromeTraceBuilder, validate_chrome_trace

        trace = ExecutionTrace(run_pipeline(n=4))
        chrome = ChromeTraceBuilder().add_execution_trace(trace.events_json()).build()
        validate_chrome_trace(chrome)
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(trace.events)


def two_stage(n):
    pipe = PipelineSimulator(
        [
            PipelineStage("load", lambda t: 2.0, slots=2),
            PipelineStage("compute", lambda t: 3.0, slots=2),
        ]
    )
    return ExecutionTrace(pipe.run(n))


class TestHandComputedFixtures:
    """Satellite: overlap/idle/utilization against worked examples.

    Two stages, load 2 s and compute 3 s, double buffered (slots=2).
    For n=3: load runs [0,2], [2,4], [5,7] (item 2 blocks on the full
    buffer until compute 0 drains at t=5); compute runs [2,5], [5,8],
    [8,11].  Overlap = [2,4] with compute 0 plus [5,7] with compute 1
    = 4 s; makespan 11 s; load busy 6 s, compute busy 9 s.
    """

    def test_three_item_intervals(self):
        trace = two_stage(3)
        assert [(e.start, e.end) for e in trace.events_for("load")] == [
            (0.0, 2.0),
            (2.0, 4.0),
            (5.0, 7.0),
        ]
        assert [(e.start, e.end) for e in trace.events_for("compute")] == [
            (2.0, 5.0),
            (5.0, 8.0),
            (8.0, 11.0),
        ]

    def test_three_item_overlap(self):
        trace = two_stage(3)
        assert trace.overlap_seconds("load", "compute") == pytest.approx(4.0)
        # overlap is symmetric
        assert trace.overlap_seconds("compute", "load") == pytest.approx(4.0)

    def test_three_item_utilization_and_idle(self):
        trace = two_stage(3)
        assert trace.makespan == pytest.approx(11.0)
        assert trace.stage_utilization("load") == pytest.approx(6.0 / 11.0)
        assert trace.stage_utilization("compute") == pytest.approx(9.0 / 11.0)
        assert trace.idle_seconds("load") == pytest.approx(5.0)
        assert trace.idle_seconds("compute") == pytest.approx(2.0)

    def test_single_item_pipeline_serializes(self):
        trace = two_stage(1)
        assert [(e.stage, e.start, e.end) for e in trace.events] == [
            ("load", 0.0, 2.0),
            ("compute", 2.0, 5.0),
        ]
        assert trace.makespan == pytest.approx(5.0)
        assert trace.overlap_seconds("load", "compute") == 0.0
        assert trace.stage_utilization("load") == pytest.approx(0.4)
        assert trace.stage_utilization("compute") == pytest.approx(0.6)
        assert trace.idle_seconds("load") == pytest.approx(3.0)

    def test_zero_duration_events_excluded_everywhere(self):
        pipe = PipelineSimulator(
            [
                PipelineStage("work", lambda t: 2.0),
                PipelineStage("sometimes", lambda t: 0.0 if t == 0 else 1.0),
            ]
        )
        trace = ExecutionTrace(pipe.run(2))
        assert all(e.duration > 0 for e in trace.events)
        assert len(trace.events_for("sometimes")) == 1
        assert len(trace.events_json()) == len(trace.events)

    def test_empty_pipeline_zero_everything(self):
        pipe = PipelineSimulator([PipelineStage("s", lambda t: 1.0)])
        trace = ExecutionTrace(pipe.run(0))
        assert trace.events == []
        assert trace.stage_utilization("s") == 0.0
        assert trace.overlap_seconds("s", "s") == 0.0
        assert trace.events_json() == []
