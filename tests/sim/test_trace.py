"""Execution-trace tests."""

import pytest

from repro.sim.engine import PipelineSimulator, PipelineStage
from repro.sim.trace import ExecutionTrace


def run_pipeline(slots=2, n=6):
    pipe = PipelineSimulator(
        [
            PipelineStage("load", lambda t: 2.0, slots=2),
            PipelineStage("compute", lambda t: 3.0, slots=slots),
            PipelineStage("store", lambda t: 1.0, slots=2),
        ]
    )
    return pipe.run(n)


class TestEvents:
    def test_event_count(self):
        trace = ExecutionTrace(run_pipeline(n=4))
        assert len(trace.events) == 3 * 4

    def test_zero_duration_events_dropped(self):
        pipe = PipelineSimulator(
            [
                PipelineStage("work", lambda t: 1.0),
                PipelineStage("maybe", lambda t: 0.0 if t % 2 else 1.0),
            ]
        )
        trace = ExecutionTrace(pipe.run(4))
        assert len(trace.events_for("maybe")) == 2

    def test_events_within_makespan(self):
        trace = ExecutionTrace(run_pipeline())
        for event in trace.events:
            assert 0 <= event.start <= event.end <= trace.makespan


class TestOverlapAnalysis:
    def test_double_buffering_shows_overlap(self):
        trace = ExecutionTrace(run_pipeline(slots=2))
        assert trace.overlap_seconds("load", "compute") > 0

    def test_single_buffering_removes_overlap(self):
        """The Section V-G story, visible in the trace."""
        double = ExecutionTrace(run_pipeline(slots=2))
        single = ExecutionTrace(run_pipeline(slots=1))
        assert single.overlap_seconds("load", "compute") < double.overlap_seconds(
            "load", "compute"
        )

    def test_bottleneck_stage_highest_utilization(self):
        trace = ExecutionTrace(run_pipeline(n=12))
        utils = {s: trace.stage_utilization(s) for s in ("load", "compute", "store")}
        assert max(utils, key=utils.get) == "compute"
        assert utils["compute"] > 0.8

    def test_idle_plus_busy_is_makespan(self):
        trace = ExecutionTrace(run_pipeline())
        busy = sum(e.duration for e in trace.events_for("store"))
        assert busy + trace.idle_seconds("store") == pytest.approx(trace.makespan)


class TestGantt:
    def test_gantt_has_row_per_stage(self):
        trace = ExecutionTrace(run_pipeline())
        lines = trace.gantt().splitlines()
        assert len(lines) == 4  # 3 stages + axis
        assert lines[0].strip().startswith("load")

    def test_gantt_width_respected(self):
        trace = ExecutionTrace(run_pipeline())
        line = trace.gantt(width=40).splitlines()[0]
        assert len(line.split("|")[1]) == 40

    def test_empty_trace(self):
        pipe = PipelineSimulator([PipelineStage("s", lambda t: 1.0)])
        trace = ExecutionTrace(pipe.run(0))
        assert trace.gantt() == "(empty trace)"
