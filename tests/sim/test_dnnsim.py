"""Dependency-aware DNN simulation tests."""

import pytest

from repro.core.multi_acc import AcceleratorPartition, GemmJob, MultiAccScheduler
from repro.mapping.configs import config_by_name
from repro.sim.dnnsim import DnnSimulator
from repro.workloads.transformer import TransformerConfig

TINY = TransformerConfig("tiny", hidden=1024, intermediate=4096, num_layers=2, num_heads=16)


@pytest.fixture(scope="module")
def partition():
    return AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3"), config_by_name("C1")]
    )


@pytest.fixture(scope="module")
def run(partition):
    return DnnSimulator(partition).run(TINY, tokens=1024)


class TestStructure:
    def test_task_count(self, run):
        # 6 GEMMs per block (3 proj + attn + 2 mlp) x 2 blocks
        assert len(run.simulation.records) == 12

    def test_projections_overlap_when_resources_allow(self, run):
        q = run.simulation.records["b0.q_proj"]
        k = run.simulation.records["b0.k_proj"]
        # same accelerator -> serialized; different -> overlapped; either
        # way both must precede attn_out
        attn = run.simulation.records["b0.attn_out"]
        assert attn.start >= max(q.finish, k.finish) - 1e-12

    def test_blocks_chain(self, run):
        first_down = run.simulation.records["b0.mlp_down"]
        second_q = run.simulation.records["b1.q_proj"]
        assert second_q.start >= first_down.finish - 1e-12

    def test_critical_path_spans_blocks(self, run):
        path = run.critical_path()
        assert path[0].startswith("b0.")
        assert path[-1] == "b1.mlp_down"

    def test_assignments_cover_all_tasks(self, run):
        assert set(run.assignments) == set(run.simulation.records)


class TestPerformance:
    def test_makespan_at_least_critical_path_work(self, run):
        path = run.critical_path()
        work = sum(run.simulation.records[t].task.duration for t in path)
        assert run.makespan >= work - 1e-12

    def test_dependency_aware_slower_than_lpt_bound(self, partition, run):
        """The dependency chain forbids the independent-jobs speedup:
        the DNN makespan exceeds the unconstrained LPT makespan."""
        jobs = [
            GemmJob(g.name, g.shape, count=TINY.num_layers)
            for g in TINY.layer_gemms(1024)
        ]
        unconstrained = MultiAccScheduler(partition).schedule(jobs)
        assert run.makespan >= unconstrained.makespan / unconstrained.dram_sharing_factor * 0.99

    def test_utilization_reported(self, run):
        utils = run.utilization()
        assert utils and all(0 <= v <= 1 for v in utils.values())

    def test_more_tokens_longer(self, partition):
        short = DnnSimulator(partition).run(TINY, tokens=512).makespan
        long = DnnSimulator(partition).run(TINY, tokens=2048).makespan
        assert long > short
