"""Kernel-emulator tests: the closed-form cycle model vs executed schedule."""

import math

import numpy as np
import pytest

from repro.kernels.emulator import AieKernelEmulator
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.kernel_timing import compute_cycles
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.workloads.gemm import GemmShape


def make_emulator(shape, precision, style=KernelStyle.INTRINSIC):
    return AieKernelEmulator(SingleAieGemmKernel(shape, precision, style))


class TestNumericalCorrectness:
    @pytest.mark.parametrize(
        "shape, precision",
        [
            (GemmShape(16, 16, 16), Precision.FP32),
            (GemmShape(32, 32, 32), Precision.FP32),
            (GemmShape(32, 32, 32), Precision.INT8),
            (GemmShape(16, 32, 16), Precision.INT16),
            (GemmShape(8, 24, 16), Precision.FP32),  # K not a k_step multiple
        ],
    )
    def test_matches_numpy(self, shape, precision):
        emulation, reference = make_emulator(shape, precision).run_random(seed=1)
        assert emulation.matches(reference)

    def test_integer_results_exact(self):
        emulation, reference = make_emulator(
            GemmShape(32, 32, 32), Precision.INT8
        ).run_random(seed=2)
        assert np.array_equal(emulation.result, reference)

    def test_rejects_wrong_operand_shapes(self):
        emulator = make_emulator(GemmShape(16, 16, 16), Precision.FP32)
        with pytest.raises(ValueError):
            emulator.run(np.ones((8, 8), np.float32), np.ones((8, 8), np.float32))

    def test_rejects_infeasible_kernel(self):
        kernel = SingleAieGemmKernel(GemmShape(256, 256, 256), Precision.FP32)
        with pytest.raises(ValueError):
            AieKernelEmulator(kernel)


class TestCycleAgreement:
    """The executed schedule must agree with the closed-form model."""

    @pytest.mark.parametrize(
        "shape, precision",
        [
            (GemmShape(16, 16, 16), Precision.FP32),
            (GemmShape(32, 32, 32), Precision.FP32),
            (GemmShape(16, 128, 16), Precision.FP32),
            (GemmShape(32, 32, 32), Precision.INT8),
            (GemmShape(64, 64, 64), Precision.INT8),
        ],
    )
    def test_cycles_match_model(self, shape, precision):
        emulation, _ = make_emulator(shape, precision).run_random()
        model = compute_cycles(shape, precision)
        assert emulation.cycles == pytest.approx(model, rel=0.01)

    def test_api_style_cycles(self):
        emulation, _ = make_emulator(
            GemmShape(32, 32, 32), Precision.FP32, KernelStyle.API
        ).run_random()
        model = compute_cycles(GemmShape(32, 32, 32), Precision.FP32, KernelStyle.API)
        assert emulation.cycles == pytest.approx(model, rel=0.01)

    def test_issue_counts(self):
        shape = GemmShape(32, 32, 32)
        emulation, _ = make_emulator(shape, Precision.INT8).run_random()
        blocks = math.ceil(shape.m * shape.n / Precision.INT8.lanes)
        k_chunks = math.ceil(shape.k / Precision.INT8.k_per_cycle)
        assert emulation.vector_issues == blocks * k_chunks
        assert emulation.drains == blocks

    def test_deterministic(self):
        e1, _ = make_emulator(GemmShape(16, 16, 16), Precision.FP32).run_random(seed=9)
        e2, _ = make_emulator(GemmShape(16, 16, 16), Precision.FP32).run_random(seed=9)
        assert e1.cycles == e2.cycles
        assert np.array_equal(e1.result, e2.result)


class TestVectorizedEquivalence:
    """The blocked-einsum path must be bit-identical to the interpreter."""

    @pytest.mark.parametrize(
        "shape, precision",
        [
            (GemmShape(32, 32, 32), Precision.FP32),
            (GemmShape(16, 48, 8), Precision.FP32),
            (GemmShape(3, 5, 7), Precision.FP32),  # partial block, ragged K
            (GemmShape(64, 64, 64), Precision.INT8),
            (GemmShape(5, 13, 9), Precision.INT8),
            (GemmShape(64, 32, 64), Precision.INT16),
            (GemmShape(7, 9, 11), Precision.INT16),
        ],
    )
    @pytest.mark.parametrize("style", [KernelStyle.INTRINSIC, KernelStyle.API])
    def test_bit_identical_to_interpreter(self, shape, precision, style):
        emulator = make_emulator(shape, precision, style)
        rng = np.random.default_rng(11)
        if precision is Precision.FP32:
            a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
            b = rng.standard_normal((shape.k, shape.n)).astype(np.float32)
        else:
            a = rng.integers(-8, 8, (shape.m, shape.k), dtype=np.int64)
            b = rng.integers(-8, 8, (shape.k, shape.n), dtype=np.int64)
        fast = emulator.run(a, b)
        slow = emulator.run(a, b, interpreted=True)
        assert fast.cycles == slow.cycles
        assert fast.vector_issues == slow.vector_issues
        assert fast.drains == slow.drains
        assert fast.result.dtype == slow.result.dtype
        assert np.array_equal(fast.result, slow.result)
