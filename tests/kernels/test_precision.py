"""Precision datapath tests (Section III speeds and feeds)."""

import pytest

from repro.kernels.precision import Precision


class TestDatapath:
    def test_fp32_macs_per_cycle(self):
        assert Precision.FP32.macs_per_cycle == 8

    def test_int8_macs_per_cycle(self):
        assert Precision.INT8.macs_per_cycle == 128

    def test_int16_macs_per_cycle(self):
        assert Precision.INT16.macs_per_cycle == 32

    @pytest.mark.parametrize("precision", list(Precision))
    def test_lanes_times_k_equals_macs(self, precision):
        assert precision.lanes * precision.k_per_cycle == precision.macs_per_cycle

    def test_element_bytes(self):
        assert Precision.FP32.element_bytes == 4
        assert Precision.INT16.element_bytes == 2
        assert Precision.INT8.element_bytes == 1

    def test_int8_compute_grows_16x_data_shrinks_4x(self):
        """The paper's core INT8 argument (Section V-C)."""
        compute_ratio = Precision.INT8.macs_per_cycle / Precision.FP32.macs_per_cycle
        data_ratio = Precision.FP32.element_bytes / Precision.INT8.element_bytes
        assert compute_ratio == 16
        assert data_ratio == 4

    def test_peak_ops_single_aie(self):
        # 1.25 GHz * 8 MACs * 2 ops = 20 Gops for FP32
        assert Precision.FP32.peak_ops_per_aie(1.25e9) == pytest.approx(20e9)


class TestParse:
    @pytest.mark.parametrize("text, expected", [
        ("fp32", Precision.FP32),
        ("INT8", Precision.INT8),
        ("Int16", Precision.INT16),
    ])
    def test_parse(self, text, expected):
        assert Precision.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.parse("fp64")

    def test_str(self):
        assert str(Precision.FP32) == "fp32"
