"""Single-AIE kernel memory-rule tests (Section V-C)."""

import pytest

from repro.kernels.gemm_kernel import (
    AIE_DATA_MEMORY_BYTES,
    MAX_DOUBLE_BUFFER_OPERAND_BYTES,
    MemoryVerdict,
    SingleAieGemmKernel,
)
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape


class TestMemoryConstants:
    def test_aie_memory_is_32kb(self):
        assert AIE_DATA_MEMORY_BYTES == 32 * 1024

    def test_double_buffer_operand_cap_is_16kb(self):
        assert MAX_DOUBLE_BUFFER_OPERAND_BYTES == 16 * 1024


class TestFootprint:
    def test_32cube_fp32_fits_locally(self):
        kernel = SingleAieGemmKernel(GemmShape(32, 32, 32), Precision.FP32)
        assert kernel.footprint_bytes() == 2 * 3 * 32 * 32 * 4
        assert kernel.memory_verdict() is MemoryVerdict.LOCAL
        assert kernel.is_scalable()

    def test_64cube_fp32_needs_neighbors(self):
        """The dotted bars of Fig. 6."""
        kernel = SingleAieGemmKernel(GemmShape(64, 64, 64), Precision.FP32)
        assert kernel.memory_verdict() is MemoryVerdict.NEIGHBOR
        assert kernel.needs_neighbor_memory()
        assert not kernel.is_scalable()

    def test_16x128x16_fp32_needs_neighbors(self):
        """Explicitly called out in Section V-C's summary."""
        kernel = SingleAieGemmKernel(GemmShape(16, 128, 16), Precision.FP32)
        assert kernel.needs_neighbor_memory()

    def test_64cube_int8_fits_locally(self):
        kernel = SingleAieGemmKernel(GemmShape(64, 64, 64), Precision.INT8)
        assert kernel.is_scalable()

    def test_128cube_int8_needs_neighbors(self):
        """The dotted bars of Fig. 7."""
        kernel = SingleAieGemmKernel(GemmShape(128, 128, 128), Precision.INT8)
        assert kernel.needs_neighbor_memory()

    def test_giant_kernel_too_large(self):
        kernel = SingleAieGemmKernel(GemmShape(256, 256, 256), Precision.FP32)
        assert kernel.memory_verdict() is MemoryVerdict.TOO_LARGE
        assert not kernel.is_feasible()

    def test_single_buffering_halves_footprint(self):
        shape = GemmShape(32, 32, 32)
        db = SingleAieGemmKernel(shape, Precision.FP32, double_buffered=True)
        sb = SingleAieGemmKernel(shape, Precision.FP32, double_buffered=False)
        assert db.footprint_bytes() == 2 * sb.footprint_bytes()


class TestDoubleBufferLegality:
    def test_max_fp32_shape_is_64cube(self):
        """Section V-C: max double-buffered workload is 64^3 for FP32."""
        assert SingleAieGemmKernel.max_double_buffered_shape(
            Precision.FP32
        ) == GemmShape(64, 64, 64)

    def test_max_int8_shape_is_128cube(self):
        assert SingleAieGemmKernel.max_double_buffered_shape(
            Precision.INT8
        ) == GemmShape(128, 128, 128)

    def test_operand_over_16kb_illegal_when_double_buffered(self):
        # A is 128x128 FP32 = 64 KB > 16 KB: the double buffer cannot
        # live inside one AIE
        kernel = SingleAieGemmKernel(GemmShape(128, 128, 16), Precision.FP32)
        assert not kernel.double_buffer_legal()
        assert not kernel.is_feasible()

    def test_same_shape_legal_without_double_buffering(self):
        kernel = SingleAieGemmKernel(
            GemmShape(128, 128, 16), Precision.FP32, double_buffered=False
        )
        assert kernel.double_buffer_legal()


class TestEfficiency:
    @pytest.mark.parametrize(
        "shape, precision, low, high",
        [
            (GemmShape(32, 32, 32), Precision.FP32, 0.90, 1.0),
            (GemmShape(16, 16, 16), Precision.FP32, 0.65, 0.85),
            (GemmShape(16, 128, 16), Precision.FP32, 0.95, 1.0),
            (GemmShape(64, 64, 64), Precision.INT8, 0.85, 1.0),
            (GemmShape(128, 128, 128), Precision.INT8, 0.93, 1.0),
            (GemmShape(32, 32, 32), Precision.INT8, 0.40, 0.75),
        ],
    )
    def test_efficiency_bands_match_paper(self, shape, precision, low, high):
        """Figs. 6/7 efficiency ranges (70-98% FP32; INT8 mostly low
        except the large kernels)."""
        kernel = SingleAieGemmKernel(shape, precision)
        assert low <= kernel.efficiency() <= high

    def test_fp32_sweep_band(self):
        """Fig. 6: FP32 kernels achieve 70% to 98% efficiency."""
        shapes = [
            GemmShape(16, 16, 16),
            GemmShape(32, 32, 32),
            GemmShape(64, 64, 64),
            GemmShape(16, 128, 16),
            GemmShape(32, 128, 32),
        ]
        for shape in shapes:
            assert 0.68 <= SingleAieGemmKernel(shape, Precision.FP32).efficiency() <= 0.99
