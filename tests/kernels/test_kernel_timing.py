"""Cycle-model tests: the mechanisms behind Figs. 5-7."""

import pytest

from repro.kernels.kernel_timing import (
    PLIO_BYTES_PER_CYCLE,
    compute_cycles,
    ideal_compute_cycles,
    kernel_timing,
    stream_cycles,
)
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.workloads.gemm import GemmShape


class TestComputeCycles:
    def test_never_below_ideal(self):
        shape = GemmShape(32, 32, 32)
        assert compute_cycles(shape, Precision.FP32) >= ideal_compute_cycles(
            shape, Precision.FP32
        )

    def test_intrinsic_fp32_32cube_efficiency_over_90pct(self):
        """Fig. 5: intrinsic kernels exceed 90% efficiency."""
        shape = GemmShape(32, 32, 32)
        eff = ideal_compute_cycles(shape, Precision.FP32) / compute_cycles(
            shape, Precision.FP32
        )
        assert eff > 0.90

    def test_intrinsic_int8_64cube_efficiency_near_90pct(self):
        shape = GemmShape(64, 64, 64)
        eff = ideal_compute_cycles(shape, Precision.INT8) / compute_cycles(
            shape, Precision.INT8
        )
        assert eff > 0.88

    def test_api_fp32_penalty_is_46pct(self):
        """Fig. 5: API kernels lose 46% of FP32 performance."""
        shape = GemmShape(32, 32, 32)
        intrinsic = compute_cycles(shape, Precision.FP32, KernelStyle.INTRINSIC)
        api = compute_cycles(shape, Precision.FP32, KernelStyle.API)
        reduction = 1 - intrinsic / api
        assert reduction == pytest.approx(0.46, abs=0.03)

    def test_api_int8_penalty_is_7pct(self):
        shape = GemmShape(64, 64, 64)
        intrinsic = compute_cycles(shape, Precision.INT8, KernelStyle.INTRINSIC)
        api = compute_cycles(shape, Precision.INT8, KernelStyle.API)
        reduction = 1 - intrinsic / api
        assert reduction == pytest.approx(0.07, abs=0.02)

    def test_larger_k_amortises_drain(self):
        """Section V-C: 16x128x16 beats 16x16x16 in compute efficiency."""

        def efficiency(shape):
            return ideal_compute_cycles(shape, Precision.FP32) / compute_cycles(
                shape, Precision.FP32
            )

        assert efficiency(GemmShape(16, 128, 16)) > efficiency(GemmShape(16, 16, 16))

    def test_monotone_in_workload(self):
        small = compute_cycles(GemmShape(16, 16, 16), Precision.FP32)
        large = compute_cycles(GemmShape(64, 64, 64), Precision.FP32)
        assert large > small


class TestStreamCycles:
    def test_plio_rate_matches_4gb_per_s(self):
        # 4 GB/s at 1.25 GHz = 3.2 bytes per AIE cycle
        assert PLIO_BYTES_PER_CYCLE == pytest.approx(3.2)

    def test_linear_in_bytes(self):
        assert stream_cycles(6400) == 2 * stream_cycles(3200)

    def test_parallel_plios_divide_time(self):
        assert stream_cycles(6400, num_plios=2) == stream_cycles(3200)

    def test_rejects_zero_plios(self):
        with pytest.raises(ValueError):
            stream_cycles(100, num_plios=0)


class TestKernelTiming:
    def test_fp32_32cube_is_compute_bound(self):
        """Fig. 6: FP32 kernels are mostly compute-bound."""
        timing = kernel_timing(GemmShape(32, 32, 32), Precision.FP32)
        assert timing.compute_bound

    def test_int8_skinny_kernels_communication_bound(self):
        """Fig. 7: INT8 kernels with modest K are communication-bound
        (compute grows 16x, data shrinks only 4x vs FP32)."""
        for shape in (GemmShape(32, 64, 128), GemmShape(128, 64, 32), GemmShape(32, 256, 32)):
            timing = kernel_timing(shape, Precision.INT8)
            assert not timing.compute_bound, shape

    def test_int8_128cube_is_the_compute_bound_exception(self):
        """Fig. 7: 128^3 is the INT8 exception."""
        timing = kernel_timing(GemmShape(128, 128, 128), Precision.INT8)
        assert timing.compute_bound

    def test_double_buffering_overlaps(self):
        db = kernel_timing(GemmShape(32, 32, 32), Precision.FP32, double_buffered=True)
        sb = kernel_timing(GemmShape(32, 32, 32), Precision.FP32, double_buffered=False)
        assert db.total < sb.total
        assert sb.total == pytest.approx(
            sb.compute + max(sb.read_a, sb.read_b) + sb.write_c
        )

    def test_efficiency_bounded(self):
        timing = kernel_timing(GemmShape(32, 32, 32), Precision.FP32)
        assert 0 < timing.efficiency <= 1

    def test_communication_is_max_of_streams(self):
        timing = kernel_timing(GemmShape(16, 128, 16), Precision.FP32)
        assert timing.communication == max(timing.read_a, timing.read_b, timing.write_c)

    def test_more_plios_reduce_read_time(self):
        one = kernel_timing(GemmShape(32, 32, 32), Precision.FP32, plios_a=1)
        two = kernel_timing(GemmShape(32, 32, 32), Precision.FP32, plios_a=2)
        assert two.read_a == one.read_a / 2

    def test_seconds_conversion(self):
        timing = kernel_timing(GemmShape(32, 32, 32), Precision.FP32)
        assert timing.seconds(1.25e9) == pytest.approx(timing.total / 1.25e9)

    def test_overlap_zero_without_double_buffering(self):
        timing = kernel_timing(GemmShape(32, 32, 32), Precision.FP32, double_buffered=False)
        assert timing.overlap_cycles == 0.0
