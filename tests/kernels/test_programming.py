"""Programming-style parameter tests."""

import pytest

from repro.kernels.precision import Precision
from repro.kernels.programming import (
    KernelStyle,
    intrinsic_name,
    style_parameters,
)


class TestStyleParameters:
    def test_intrinsics_have_unit_ii(self):
        for precision in Precision:
            assert style_parameters(KernelStyle.INTRINSIC, precision).ii_multiplier == 1.0

    def test_api_always_slower_or_equal(self):
        for precision in Precision:
            api = style_parameters(KernelStyle.API, precision)
            intr = style_parameters(KernelStyle.INTRINSIC, precision)
            assert api.ii_multiplier >= intr.ii_multiplier
            assert api.ramp_cycles >= intr.ramp_cycles

    def test_fp32_api_much_slower_than_int8_api(self):
        """Fig. 5's asymmetry: the FP32 API is far less mature."""
        fp32 = style_parameters(KernelStyle.API, Precision.FP32).ii_multiplier
        int8 = style_parameters(KernelStyle.API, Precision.INT8).ii_multiplier
        assert fp32 > 1.5 > int8


class TestNames:
    def test_intrinsic_names_match_paper(self):
        assert intrinsic_name(Precision.FP32) == "fpmac"
        assert intrinsic_name(Precision.INT8) == "mac16"

    def test_parse(self):
        assert KernelStyle.parse("API") is KernelStyle.API
        assert KernelStyle.parse("intrinsic") is KernelStyle.INTRINSIC

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            KernelStyle.parse("hls")

    def test_str(self):
        assert str(KernelStyle.API) == "api"
