"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "384x128x256" in out

    def test_run_csv_format(self, capsys):
        assert main(["run", "table3", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "B1" in out and "," in out

    def test_run_json_format(self, capsys):
        assert main(["run", "table1", "--format", "json"]) == 0
        assert "aiesimulator" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_estimate(self, capsys):
        assert main(["estimate", "1024x1024x1024", "--config", "C3"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out and "throughput" in out

    def test_dse(self, capsys):
        assert main(["dse", "512x512x512", "--precision", "fp32", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out

    def test_dse_vectorize_identical_output(self, capsys):
        argv = ["dse", "512x512x512", "--precision", "fp32", "--top", "3"]
        assert main(["--no-vectorize"] + argv) == 0
        serial = capsys.readouterr().out
        assert main(["--vectorize"] + argv) == 0
        assert capsys.readouterr().out == serial

    def test_stats_reset_per_invocation(self, capsys):
        argv = ["--stats", "dse", "768x768x768", "--precision", "int8", "--top", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().err
        assert main(argv) == 0
        second = capsys.readouterr().err
        # both runs report exactly their own batch — the second run hits
        # the process-wide cache but its counters start from zero again
        assert "over 1 batches" in first
        assert "over 1 batches" in second
        assert "/ 0 misses" not in first.splitlines()[0]
        assert "/ 0 misses" in second.splitlines()[0]

    def test_model(self, capsys):
        assert main(["model", "BERT-large", "--tokens", "256"]) == 0
        out = capsys.readouterr().out
        assert "forward pass" in out and "mlp_up" in out

    def test_model_fixed_config(self, capsys):
        assert main(["model", "BERT-large", "--tokens", "256", "--fixed-config"]) == 0
        out = capsys.readouterr().out
        assert "tokens/s" in out

    def test_trace(self, capsys):
        assert main(["trace", "1024x1024x1024", "--config", "C11", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "load/AIE overlap" in out and "|" in out

    def test_estimate_json(self, capsys):
        import json

        assert main(["estimate", "1024x1024x1024", "--config", "C3", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["workload"] == "1024x1024x1024"
        assert parsed["design"]["config"]["name"] == "C3"

    def test_roofline(self, capsys):
        assert main(["roofline", "--width", "50", "--height", "10"]) == 0
        out = capsys.readouterr().out
        assert "o=ideal" in out and "/" in out

    def test_graph_summary(self, capsys):
        assert main(["graph", "--config", "C1"]) == 0
        out = capsys.readouterr().out
        assert "packs" in out and "PLIO" in out

    def test_graph_dot(self, capsys):
        assert main(["graph", "--config", "C7", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "C7"')

    def test_chart(self, capsys):
        assert main(["chart", "table3", "--value", "gflop", "--label", "id"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "L2" in out

    def test_chart_log_scale(self, capsys):
        assert main(["chart", "table3", "--value", "gflop", "--label", "id", "--log"]) == 0
        assert "#" in capsys.readouterr().out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "results.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# Reproduction results" in text
        assert "fig9" in text and "table2" in text and "insights" in text


class TestServe:
    SHAPES = "1024x1024x1024,512x512x512"

    def test_point_mode(self, capsys):
        argv = ["serve", self.SHAPES, "--requests", "200", "--rate", "2000"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "throughput" in out and "requests" in out

    def test_streaming_matches_exact_summary_fields(self, capsys):
        argv = ["serve", self.SHAPES, "--requests", "300", "--streaming"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "makespan" in out

    def test_dispatch_pinning(self, capsys):
        base = ["serve", self.SHAPES, "--requests", "150", "--seed", "3"]
        outputs = []
        for engine in ("scan", "table", "heap", "vectorized"):
            assert main(base + ["--dispatch", engine]) == 0
            outputs.append(capsys.readouterr().out)
        # byte-identical dispatch => byte-identical summaries
        assert len(set(outputs)) == 1

    def test_cache_dir_warm_starts_second_invocation(self, capsys, tmp_path):
        from repro.perf import clear_cache

        argv = [
            "--stats", "--cache-dir", str(tmp_path),
            "serve", self.SHAPES, "--requests", "200",
        ]
        clear_cache()
        assert main(argv) == 0
        cold = capsys.readouterr().err
        assert "cache disk" in cold and "(cold start)" in cold
        clear_cache()  # a fresh process: only the snapshot file remains
        assert main(argv) == 0
        warm = capsys.readouterr().err
        disk_line = next(l for l in warm.splitlines() if "cache disk" in l)
        assert "(cold start)" not in disk_line
        loaded = int(disk_line.split()[2])
        assert loaded > 0  # warm hits from the snapshot
        assert "estimate: 0 hits" not in warm

    def test_sweep_jobs_output_identical(self, capsys):
        argv = [
            "serve", self.SHAPES, "--sweep", "--requests", "150",
            "--loads", "100,500,2500",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2"] + argv) == 0
        assert capsys.readouterr().out == serial

    def test_sweep(self, capsys):
        argv = [
            "serve", self.SHAPES, "--sweep", "--requests", "150",
            "--loads", "100,500",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "offered-load sweep" in out and "p99_ms" in out

    def test_rejects_rate_and_interarrival_together(self, capsys):
        argv = [
            "serve", self.SHAPES, "--rate", "100",
            "--mean-interarrival", "0.01",
        ]
        assert main(argv) == 2
        assert "not both" in capsys.readouterr().err

    def test_stats_reports_native_kernel_flag(self, capsys):
        from repro.obs.metrics import GLOBAL_METRICS
        from repro.sim.dispatch_batch import native_available

        argv = ["--stats", "serve", self.SHAPES, "--requests", "150"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        native_line = next(
            line for line in err.splitlines() if line.startswith("native")
        )
        expected = "available" if native_available() else "unavailable"
        assert expected in native_line
        family = GLOBAL_METRICS.snapshot()["repro_native_available"]
        assert family["type"] == "gauge"
        assert family["values"][0]["value"] == (
            1.0 if native_available() else 0.0
        )


class TestServeFaults:
    SHAPES = "1024x1024x1024,512x512x512"
    BASE = ["serve", SHAPES, "--requests", "200", "--rate", "2000", "--seed", "3"]

    def test_window_spec_prints_fault_lines(self, capsys):
        argv = self.BASE + ["--faults", "C5:down:0.01:0.03"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "faults" in out and "availability" in out
        assert "kills" in out and "shed" in out

    def test_chaos_mode_deterministic_under_seed(self, capsys):
        argv = self.BASE + ["--faults", "chaos", "--fault-seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_fault_seed_changes_chaos_schedule(self, capsys):
        outputs = []
        for seed in ("1", "2"):
            argv = self.BASE + ["--faults", "chaos", "--fault-seed", seed]
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] != outputs[1]

    def test_faulted_dispatch_engines_byte_identical(self, capsys):
        outputs = []
        for engine in ("scan", "table", "heap"):
            argv = self.BASE + [
                "--faults", "C5:down:0.005:0.02,C3:slow:2.5:0.0:0.05",
                "--dispatch", engine,
            ]
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_device_degraded_window_runs(self, capsys):
        argv = self.BASE + ["--faults", "C5:cols:1:0.0:0.05"]
        assert main(argv) == 0
        assert "availability" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, capsys):
        argv = self.BASE + ["--faults", "C9:down:0.0:0.1"]
        assert main(argv) == 2
        assert "unknown accelerator" in capsys.readouterr().err

    def test_malformed_spec_exits_2(self, capsys):
        argv = self.BASE + ["--faults", "C5:frob:1:2:3"]
        assert main(argv) == 2
        assert "fault" in capsys.readouterr().err

    def test_fault_free_output_unchanged_by_flag_absence(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "faults" not in out and "availability" not in out

    def test_stats_prints_fault_line(self, capsys):
        argv = ["--stats"] + self.BASE + ["--faults", "C5:down:0.005:0.02"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "fault stats" in captured.err

    def test_sweep_accepts_faults(self, capsys):
        argv = [
            "serve", self.SHAPES, "--sweep", "--requests", "150",
            "--loads", "100,500", "--faults", "C5:down:0.01:0.05",
        ]
        assert main(argv) == 0
        assert "offered-load sweep" in capsys.readouterr().out


class TestObservability:
    SHAPES = "1024x1024x1024,512x512x512"

    def serve_argv(self, *extra):
        return ["serve", self.SHAPES, "--requests", "200", *extra]

    def test_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(self.serve_argv("--trace-out", str(path))) == 0
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "serve.run" for e in events)
        # per-request serving lifecycle rendered alongside the spans
        assert any(e.get("cat") == "execute" for e in events)

    def test_trace_out_tracer_disabled_afterwards(self, tmp_path):
        from repro.obs.spans import GLOBAL_TRACER

        path = tmp_path / "trace.json"
        assert main(self.serve_argv("--trace-out", str(path))) == 0
        assert not GLOBAL_TRACER.enabled

    def test_metrics_out_writes_prometheus_text(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(self.serve_argv("--metrics-out", str(path))) == 0
        text = path.read_text()
        assert "# TYPE repro_serving_requests_total counter" in text
        assert "repro_serving_requests_total 200" in text
        assert "repro_serving_latency_seconds_count 200" in text
        assert 'repro_serving_latency_seconds_bucket{le="' in text
        assert 'repro_serving_latency_seconds_bucket{le="+Inf"} 200' in text
        assert "repro_eval_evaluations_total" in text  # migrated EvalStats

    def test_streaming_trace_still_exports_spans(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        argv = self.serve_argv("--streaming", "--trace-out", str(path))
        assert main(argv) == 0
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "serve.run" in names

    def test_dse_trace_out(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        argv = ["dse", "1024x1024x1024", "--top", "3", "--trace-out", str(path)]
        assert main(argv) == 0
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "dse.explore" in names and "model.estimate" in names

    def test_obs_summary_renders_table(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(self.serve_argv("--trace-out", str(path))) == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "track" in out and "util" in out and "bottleneck:" in out

    def test_obs_summary_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["obs", "summary", str(tmp_path / "nope.json")]) == 2
        assert "obs summary:" in capsys.readouterr().err

    def test_obs_summary_invalid_trace_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"name": "x", "ph": "Z", "ts": 0}]}')
        assert main(["obs", "summary", str(path)]) == 2
        assert "obs summary:" in capsys.readouterr().err

    def test_serving_output_identical_with_and_without_tracing(
        self, capsys, tmp_path
    ):
        argv = self.serve_argv("--seed", "7")
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        traced = argv + ["--trace-out", str(tmp_path / "t.json")]
        assert main(traced) == 0
        assert capsys.readouterr().out == baseline


class TestServeSlo:
    SHAPES = "1024x1024x1024,512x512x512"

    def serve_argv(self, *extra):
        return [
            "serve", self.SHAPES, "--requests", "2000",
            "--mean-interarrival", "5e-4", "--seed", "3", *extra,
        ]

    def test_slo_prints_windowed_timeline_and_verdict(self, capsys):
        argv = self.serve_argv("--slo", "p99<1s,avail>0.9", "--windows", "10")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "windowed telemetry" in out
        assert "rps" in out and "p99" in out
        assert "slo          p99<1s: ok" in out
        assert "avail>0.9: ok" in out

    def test_monitor_out_without_slo_still_prints_timeline(
        self, capsys, tmp_path
    ):
        import json

        path = tmp_path / "monitor.json"
        argv = self.serve_argv("--monitor-out", str(path))
        assert main(argv) == 0
        assert "windowed telemetry" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert "monitor" in data and "slo" not in data
        windows = data["monitor"]["requests"]["values"]
        assert sum(windows.values()) == 2000

    def test_fault_alert_fires_inside_fault_window(self, capsys, tmp_path):
        import json

        path = tmp_path / "monitor.json"
        argv = self.serve_argv(
            "--slo", "p99<50ms,avail>0.999", "--windows", "20",
            "--faults", "C5:down:0.3:0.6",
            "--monitor-out", str(path),
        )
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "BREACH" in out and "ALERT" in out
        alerts = json.loads(path.read_text())["alerts"]
        assert alerts, "fault injection produced no burn-rate alert"
        # the acceptance contract: some alert fires *inside* the
        # injected [0.3s, 0.6s) fault window
        assert any(0.3 <= alert["time"] <= 0.6 for alert in alerts)
        assert {a["severity"] for a in alerts} <= {"fast", "slow"}

    def test_slo_output_identical_to_plain_run_above_the_timeline(
        self, capsys
    ):
        plain = self.serve_argv()
        assert main(plain) == 0
        baseline = capsys.readouterr().out
        assert main(self.serve_argv("--slo", "p99<1s")) == 0
        monitored = capsys.readouterr().out
        # the monitor is additive: the serving summary itself is untouched
        # and the timeline is appended after it
        assert monitored.startswith(baseline.rstrip("\n"))
        assert "windowed telemetry" in monitored
        assert "windowed telemetry" not in baseline

    def test_trace_out_gains_counter_track(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        argv = self.serve_argv(
            "--slo", "p99<1s", "--windows", "10", "--trace-out", str(path)
        )
        assert main(argv) == 0
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "serving rps" in names and "serving p99 (ms)" in names

    def test_bad_slo_spec_exits_2(self, capsys):
        assert main(self.serve_argv("--slo", "p99>50ms")) == 2
        assert "SLO" in capsys.readouterr().err

    def test_windows_must_be_positive(self, capsys):
        assert main(self.serve_argv("--slo", "p99<1s", "--windows", "0")) == 2
        assert "windows" in capsys.readouterr().err

    def test_sharded_serve_merges_monitor(self, capsys):
        argv = self.serve_argv(
            "--shards", "2", "--slo", "p99<1s", "--windows", "10"
        )
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "windowed telemetry" in out
        assert "p99<1s: ok" in out

    def test_sweep_slo_column_and_breach_line(self, capsys):
        argv = [
            "serve", self.SHAPES, "--sweep", "--requests", "150",
            "--loads", "100,4000", "--slo", "p99<5ms",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "slo" in out
        assert "slo breach" in out or "BREACH" in out or "none within" in out


class TestObsSlo:
    SHAPES = "1024x1024x1024,512x512x512"

    def _export(self, tmp_path, *extra):
        path = tmp_path / "monitor.json"
        argv = [
            "serve", self.SHAPES, "--requests", "1000",
            "--mean-interarrival", "5e-4", "--seed", "3",
            "--monitor-out", str(path), *extra,
        ]
        assert main(argv) == 0
        return path

    def test_reevaluates_stored_spec(self, capsys, tmp_path):
        path = self._export(tmp_path, "--slo", "p99<1s")
        capsys.readouterr()
        assert main(["obs", "slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "windowed telemetry" in out
        assert "p99<1s: ok" in out

    def test_override_spec_flips_verdict(self, capsys, tmp_path):
        path = self._export(tmp_path, "--slo", "p99<1s")
        capsys.readouterr()
        assert main(["obs", "slo", str(path), "--slo", "p99<1ns"]) == 0
        out = capsys.readouterr().out
        assert "BREACH" in out

    def test_no_stored_spec_prints_hint(self, capsys, tmp_path):
        path = self._export(tmp_path)
        capsys.readouterr()
        assert main(["obs", "slo", str(path)]) == 0
        captured = capsys.readouterr()
        assert "windowed telemetry" in captured.out
        assert "pass --slo" in captured.err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["obs", "slo", str(tmp_path / "nope.json")]) == 2
        assert "obs slo:" in capsys.readouterr().err

    def test_non_monitor_json_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": []}')
        assert main(["obs", "slo", str(path)]) == 2
        assert "not a monitor export" in capsys.readouterr().err

    def test_bad_override_spec_exits_2(self, capsys, tmp_path):
        path = self._export(tmp_path)
        capsys.readouterr()
        assert main(["obs", "slo", str(path), "--slo", "frobnicate"]) == 2
        assert "obs slo:" in capsys.readouterr().err


class TestBenchObsFlags:
    def test_bench_metrics_out(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        argv = [
            "bench", "estimate", "--repeats", "2",
            "--metrics-out", str(path),
        ]
        assert main(argv) == 0
        text = path.read_text()
        assert "# TYPE repro_" in text
