"""Edge-case tests: degenerate shapes and boundary conditions through the
full pipeline (shape algebra -> plan -> model -> simulator)."""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.sim.functional import FunctionalGemm
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def design():
    return CharmDesign(config_by_name("C1"))


class TestDegenerateShapes:
    def test_1x1x1_workload(self, design):
        """The smallest possible GEMM pads to one native tile."""
        shape = GemmShape(1, 1, 1)
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.plan.num_dram_tiles == 1
        assert estimate.total_seconds > design.device.aie_setup_seconds
        assert FunctionalGemm(design).run(shape).correct

    def test_single_row_gemv(self, design):
        shape = GemmShape(1, 2048, 2048)
        assert FunctionalGemm(design).run(shape).correct
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.efficiency < 0.1  # almost all padding

    def test_single_column(self, design):
        shape = GemmShape(2048, 2048, 1)
        assert FunctionalGemm(design).run(shape).correct

    def test_single_reduction_step(self, design):
        shape = GemmShape(256, 1, 256)
        assert FunctionalGemm(design).run(shape).correct

    def test_prime_dimensions(self, design):
        shape = GemmShape(127, 257, 509)
        result = FunctionalGemm(design).run(shape)
        assert result.correct
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.plan.padded.is_multiple_of(design.native_size)


class TestBoundaryWorkloads:
    def test_exactly_one_native_tile(self, design):
        estimate = AnalyticalModel(design).estimate(design.native_size)
        assert estimate.plan.num_dram_tiles == 1
        assert estimate.plan.pl_tiles_per_dram_tile >= 1

    def test_one_element_over_native(self, design):
        native = design.native_size
        shape = GemmShape(native.m + 1, native.k, native.n)
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.plan.padded.m == 2 * native.m

    def test_very_large_workload(self, design):
        shape = GemmShape(16384, 16384, 16384)
        estimate = AnalyticalModel(design).estimate(shape)
        hw = HwSimulator(design).run(shape)
        assert estimate.total_seconds == pytest.approx(hw.total_seconds, rel=0.05)

    def test_extreme_aspect_ratio(self, design):
        shape = GemmShape(32768, 32, 32)
        estimate = AnalyticalModel(design).estimate(shape)
        assert estimate.total_seconds > 0

    def test_model_deterministic(self, design):
        shape = GemmShape(1000, 2000, 3000)
        a = AnalyticalModel(design).estimate(shape).total_seconds
        b = AnalyticalModel(design).estimate(shape).total_seconds
        assert a == b


class TestConsistencyAcrossLayers:
    def test_padded_workload_same_time_as_its_padding(self, design):
        """A workload and its padded shape execute identically (padding
        is executed)."""
        shape = GemmShape(100, 300, 200)
        padded = shape.padded_to(design.native_size)
        t1 = AnalyticalModel(design).estimate(shape).total_seconds
        t2 = AnalyticalModel(design).estimate(padded).total_seconds
        assert t1 == pytest.approx(t2)

    def test_all_configs_handle_all_table3_shapes(self):
        from repro.mapping.configs import ALL_CONFIGS
        from repro.workloads.dnn import DNN_WORKLOADS

        for config in ALL_CONFIGS:
            model = AnalyticalModel(CharmDesign(config))
            for workload in DNN_WORKLOADS:
                estimate = model.estimate(workload.shape)
                assert estimate.total_seconds > 0
