"""Serialization round-trip tests."""

import json

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.hw.dram import DramPorts
from repro.io import (
    design_from_dict,
    design_from_json,
    design_to_dict,
    design_to_json,
    estimate_to_dict,
    estimate_to_json,
)
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture
def design():
    return CharmDesign(config_by_name("C6"))


class TestDesignRoundTrip:
    def test_dict_round_trip(self, design):
        restored = design_from_dict(design_to_dict(design))
        assert restored == design

    def test_json_round_trip(self, design):
        restored = design_from_json(design_to_json(design))
        assert restored == design

    def test_variant_fields_preserved(self):
        design = CharmDesign(
            config_by_name("C1"),
            kernel_style=KernelStyle.API,
            pl_double_buffered=False,
        ).with_ports(DramPorts(2, 1))
        restored = design_from_json(design_to_json(design))
        assert restored.kernel_style is KernelStyle.API
        assert not restored.pl_double_buffered
        assert str(restored.config.dram_ports) == "2r1w"

    def test_explicit_plio_split_preserved(self):
        design = CharmDesign(config_by_name("C1"))  # override (2, 4, 1)
        restored = design_from_dict(design_to_dict(design))
        assert restored.config.plio_split() == (2, 4, 1)

    def test_restored_design_validates_and_estimates(self, design):
        restored = design_from_dict(design_to_dict(design))
        estimate = AnalyticalModel(restored).estimate(GemmShape(1024, 1024, 1024))
        assert estimate.total_seconds > 0

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a design"):
            design_from_dict({"kind": "something"})

    def test_wrong_schema_rejected(self, design):
        data = design_to_dict(design)
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            design_from_dict(data)


class TestEstimateExport:
    def test_estimate_dict_fields(self, design):
        estimate = AnalyticalModel(design).estimate(GemmShape(2048, 2048, 2048))
        data = estimate_to_dict(estimate)
        assert data["workload"] == "2048x2048x2048"
        assert data["total_seconds"] == estimate.total_seconds
        assert data["breakdown"]["memory_bound"] is True
        assert data["tile_plan"]["tiling_overhead"] >= 1.0

    def test_estimate_json_parses(self, design):
        estimate = AnalyticalModel(design).estimate(GemmShape(1024, 1024, 1024))
        parsed = json.loads(estimate_to_json(estimate))
        assert parsed["design"]["config"]["name"] == "C6"
