"""DRAM model tests (Section IV-C)."""

import pytest

from repro.hw.dram import (
    CHARM_DEFAULT_PORTS,
    IMPROVED_PORTS,
    DramModel,
    DramPorts,
    TRANSFER_LATENCY_SECONDS,
)


class TestDramPorts:
    def test_parse_paper_notation(self):
        assert DramPorts.parse("2r1w") == DramPorts(2, 1)
        assert DramPorts.parse("4R2W") == DramPorts(4, 2)

    def test_parse_rejects_malformed(self):
        for text in ("2r", "r1w", "2x1y", ""):
            with pytest.raises(ValueError):
                DramPorts.parse(text)

    def test_str_round_trips(self):
        assert str(DramPorts(4, 2)) == "4r2w"

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            DramPorts(0, 1)
        with pytest.raises(ValueError):
            DramPorts(1, 0)

    def test_named_setups(self):
        assert CHARM_DEFAULT_PORTS == DramPorts(2, 1)
        assert IMPROVED_PORTS == DramPorts(4, 2)


class TestBandwidth:
    def test_charm_default_20_gbs(self):
        assert DramModel(ports=CHARM_DEFAULT_PORTS).total_bandwidth() == pytest.approx(
            20e9, rel=0.01
        )

    def test_improved_34_gbs(self):
        assert DramModel(ports=IMPROVED_PORTS).total_bandwidth() == pytest.approx(
            34e9, rel=0.01
        )

    def test_even_more_ports_no_gain(self):
        assert DramModel(ports=DramPorts(8, 4)).total_bandwidth() == pytest.approx(
            34e9, rel=0.01
        )

    def test_utilization_34_pct(self):
        """Section IV-C: only 34% of chip DRAM bandwidth achievable."""
        assert DramModel(ports=IMPROVED_PORTS).utilization() == pytest.approx(
            0.34, abs=0.02
        )

    def test_read_write_split_proportional_to_ports(self):
        model = DramModel(ports=IMPROVED_PORTS)
        assert model.read_bandwidth() == pytest.approx(
            model.port_bandwidth() * 4
        )
        assert model.write_bandwidth() == pytest.approx(model.port_bandwidth() * 2)

    def test_partial_port_usage(self):
        model = DramModel(ports=IMPROVED_PORTS)
        assert model.read_bandwidth(2) == pytest.approx(model.read_bandwidth() / 2)

    def test_rejects_over_allocation(self):
        model = DramModel(ports=CHARM_DEFAULT_PORTS)
        with pytest.raises(ValueError):
            model.read_bandwidth(3)


class TestTransferTiming:
    def test_zero_bytes_is_free(self):
        assert DramModel().transfer_seconds(0) == 0.0

    def test_includes_burst_latency(self):
        model = DramModel()
        tiny = model.transfer_seconds(64)
        assert tiny >= TRANSFER_LATENCY_SECONDS

    def test_large_transfer_dominated_by_bandwidth(self):
        model = DramModel()
        size = 100 * 2**20
        assert model.transfer_seconds(size) == pytest.approx(
            size / model.total_bandwidth(), rel=0.01
        )

    def test_effective_bandwidth_low_for_small_transfers(self):
        """Section V-B: DRAM bandwidth efficiency is low for small sizes."""
        model = DramModel()
        small = model.effective_bandwidth(4 * 1024)
        large = model.effective_bandwidth(64 * 2**20)
        assert small < 0.1 * large

    def test_effective_bandwidth_monotone(self):
        model = DramModel()
        sizes = [2**i for i in range(10, 28, 2)]
        values = [model.effective_bandwidth(s) for s in sizes]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            DramModel().transfer_seconds(-1)
