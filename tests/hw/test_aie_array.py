"""AIE array + switch network tests."""

import pytest

from repro.hw.aie_array import AieArray, HOP_LATENCY_CYCLES
from repro.hw.specs import VCK5000


class TestGrid:
    def test_400_tiles(self):
        assert AieArray().num_tiles == 400

    def test_tile_lookup(self):
        array = AieArray()
        assert array.tile(10, 3).position == (10, 3)

    def test_initial_utilization_zero(self):
        assert AieArray().utilization() == 0.0


class TestPlacement:
    def test_place_block_contiguous(self):
        array = AieArray()
        placed = array.place_block("k", 16)
        assert len(placed) == 16
        assert array.occupied_count() == 16

    def test_place_block_exhaustion(self):
        array = AieArray()
        array.place_block("k", 400)
        with pytest.raises(RuntimeError):
            array.place_block("extra", 1)

    def test_place_scattered_deterministic(self):
        a1, a2 = AieArray(), AieArray()
        p1 = [t.position for t in a1.place_scattered("k", 8, seed=42)]
        p2 = [t.position for t in a2.place_scattered("k", 8, seed=42)]
        assert p1 == p2

    def test_place_scattered_differs_by_seed(self):
        a1, a2 = AieArray(), AieArray()
        p1 = [t.position for t in a1.place_scattered("k", 8, seed=1)]
        p2 = [t.position for t in a2.place_scattered("k", 8, seed=2)]
        assert p1 != p2

    def test_reset_placement(self):
        array = AieArray()
        array.place_block("k", 32)
        array.reset_placement()
        assert array.occupied_count() == 0


class TestRouting:
    def test_route_is_shortest_path(self):
        array = AieArray()
        route = array.route((0, 0), (3, 0))
        assert route.hop_count == 3

    def test_route_latency(self):
        array = AieArray()
        route = array.route((0, 0), (2, 2))
        assert route.latency_cycles == route.hop_count * HOP_LATENCY_CYCLES

    def test_distance_manhattan(self):
        assert AieArray().distance((0, 0), (3, 4)) == 7

    def test_congestion_counts_shared_links(self):
        array = AieArray()
        array.route((0, 0), (5, 0))
        array.route((0, 0), (5, 0))
        assert array.max_link_congestion() == 2

    def test_congestion_zero_without_routes(self):
        assert AieArray().max_link_congestion() == 0

    def test_mean_congestion(self):
        array = AieArray()
        array.route((0, 0), (2, 0))
        assert array.mean_link_congestion() == 1.0

    def test_device_parameterised(self):
        from repro.hw.specs import AIE_ML_DEVICE

        array = AieArray(AIE_ML_DEVICE)
        assert array.num_tiles == AIE_ML_DEVICE.num_aies
