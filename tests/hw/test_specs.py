"""Device spec tests: every Section III speed/feed must reproduce."""

import pytest

from repro.hw.specs import AIE_ML_DEVICE, VCK5000, device_by_name
from repro.kernels.precision import Precision


class TestVck5000SpeedsAndFeeds:
    def test_400_aies(self):
        assert VCK5000.num_aies == 400

    def test_aie_frequency(self):
        assert VCK5000.aie_freq_hz == 1.25e9

    def test_fp32_peak_is_8_tflops(self):
        """Section III: 1.25 GHz * 8 * 400 * 2 = 8 TFLOPs."""
        assert VCK5000.peak_ops(Precision.FP32) == pytest.approx(8e12)

    def test_int8_peak_is_128_tops(self):
        """Section III: 1.25 GHz * 128 * 400 * 2 = 128 TOPs."""
        assert VCK5000.peak_ops(Precision.INT8) == pytest.approx(128e12)

    def test_peak_scales_with_aie_count(self):
        assert VCK5000.peak_ops(Precision.FP32, 200) == pytest.approx(4e12)

    def test_pl_to_aie_bandwidth_1_2_tbs(self):
        """Section III: 4 GB/s * 8 * 39 = 1.2 TB/s."""
        assert VCK5000.pl_to_aie_bandwidth == pytest.approx(1.248e12)

    def test_aie_to_pl_bandwidth_0_9_tbs(self):
        """Section III: 4 GB/s * 6 * 39 = 0.9 TB/s."""
        assert VCK5000.aie_to_pl_bandwidth == pytest.approx(0.936e12)

    def test_dram_bandwidth_102_gbs(self):
        assert VCK5000.dram_bandwidth == pytest.approx(102.4e9)

    def test_noc_pl_bandwidth_64_gbs(self):
        """Section IV-C: four 16 GB/s vertical lanes."""
        assert VCK5000.noc_pl_bandwidth == pytest.approx(64e9)

    def test_aie_internal_memory_12_8_mb(self):
        """Section III: 400 AIEs * 32 KB = 12.8 MB."""
        assert VCK5000.aie_total_memory_bytes == 400 * 32 * 1024

    def test_bram_capacity_4_6_mb(self):
        """967 BRAMs of 36 Kbit ~= 4.4 MB (paper rounds to 4.6)."""
        assert VCK5000.bram_bytes == pytest.approx(4.6e6, rel=0.1)

    def test_uram_capacity_17_mb(self):
        """463 URAMs of 288 Kbit ~= 17.1 MB."""
        assert VCK5000.uram_bytes == pytest.approx(17.1e6, rel=0.05)

    def test_pl_memory_about_24_mb(self):
        """Section V-J: aggregate internal PL memory of ~24 MB."""
        assert 20e6 < VCK5000.pl_memory_bytes < 24e6

    def test_usable_pl_memory_smaller_than_raw(self):
        assert VCK5000.pl_usable_bytes < VCK5000.pl_memory_bytes

    def test_plio_rate_per_aie_cycle(self):
        assert VCK5000.plio_bytes_per_aie_cycle() == pytest.approx(3.2)

    def test_plio_stream_counts(self):
        assert VCK5000.total_plio_in == 39 * 8
        assert VCK5000.total_plio_out == 39 * 6

    def test_usable_plio_budget_supports_paper_replication(self):
        """Section V-H: a 36-PLIO design replicates 7x before exhausting
        PLIOs; a 7-PLIO design replicates 25x (AIE-limited)."""
        assert VCK5000.usable_plios // 36 == 7
        assert min(VCK5000.usable_plios // 7, VCK5000.num_aies // 16) == 25

    def test_cycle_conversions_roundtrip(self):
        assert VCK5000.seconds_to_cycles(VCK5000.cycles_to_seconds(1250)) == pytest.approx(1250)


class TestSecondGeneration:
    def test_aie_ml_has_more_int8_throughput_per_tile(self):
        """Section V-K: AIE-ML increases compute throughput."""
        assert (
            AIE_ML_DEVICE.macs_per_cycle[Precision.INT8]
            > VCK5000.macs_per_cycle[Precision.INT8]
        )

    def test_aie_ml_has_larger_local_memory(self):
        assert AIE_ML_DEVICE.aie_memory_bytes > VCK5000.aie_memory_bytes

    def test_lookup_by_name(self):
        assert device_by_name("vck5000") is VCK5000
        assert device_by_name("AIE-ML") is AIE_ML_DEVICE

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            device_by_name("vck9000")
