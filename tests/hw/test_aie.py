"""AIE tile tests."""

import pytest

from repro.hw.aie import AieTile
from repro.hw.specs import VCK5000


class TestTileBasics:
    def test_position(self):
        assert AieTile(3, 2).position == (3, 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AieTile(VCK5000.aie_cols, 0)
        with pytest.raises(ValueError):
            AieTile(0, VCK5000.aie_rows)

    def test_memory_is_32kb(self):
        assert AieTile(0, 0).memory_bytes == 32 * 1024


class TestMemoryReservation:
    def test_reserve_and_release(self):
        tile = AieTile(0, 0)
        tile.reserve(1024)
        assert tile.free_bytes == 32 * 1024 - 1024
        tile.release(1024)
        assert tile.free_bytes == 32 * 1024

    def test_over_reserve_raises(self):
        tile = AieTile(0, 0)
        with pytest.raises(MemoryError):
            tile.reserve(33 * 1024)

    def test_release_more_than_reserved_raises(self):
        tile = AieTile(0, 0)
        tile.reserve(100)
        with pytest.raises(ValueError):
            tile.release(200)

    def test_negative_reserve_raises(self):
        with pytest.raises(ValueError):
            AieTile(0, 0).reserve(-1)


class TestKernelPlacement:
    def test_place_kernel(self):
        tile = AieTile(0, 0)
        tile.place_kernel("gemm0", 24 * 1024)
        assert tile.occupied
        assert tile.kernel == "gemm0"

    def test_double_placement_raises(self):
        tile = AieTile(0, 0)
        tile.place_kernel("a", 0)
        with pytest.raises(RuntimeError):
            tile.place_kernel("b", 0)


class TestTopology:
    def test_cascade_snakes_right_on_even_rows(self):
        assert AieTile(0, 0).cascade_successor() == (1, 0)

    def test_cascade_snakes_left_on_odd_rows(self):
        assert AieTile(5, 1).cascade_successor() == (4, 1)

    def test_cascade_turns_up_at_row_end(self):
        last_col = VCK5000.aie_cols - 1
        assert AieTile(last_col, 0).cascade_successor() == (last_col, 1)

    def test_cascade_ends_at_array_corner(self):
        top_row = VCK5000.aie_rows - 1
        # odd rows run right-to-left, so the chain ends at column 0 of the
        # top row (rows is even on VCK5000)
        corner_col = 0 if top_row % 2 == 1 else VCK5000.aie_cols - 1
        assert AieTile(corner_col, top_row).cascade_successor() is None

    def test_shared_memory_neighbors_interior(self):
        neighbors = AieTile(5, 2).shared_memory_neighbors()
        assert len(neighbors) == 3
        assert (5, 1) in neighbors and (5, 3) in neighbors

    def test_shared_memory_neighbors_clipped_at_edges(self):
        neighbors = AieTile(0, 0).shared_memory_neighbors()
        assert all(0 <= c < VCK5000.aie_cols and 0 <= r < VCK5000.aie_rows
                   for c, r in neighbors)
        assert len(neighbors) < 3
