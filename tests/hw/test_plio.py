"""PLIO port and allocator tests."""

import pytest

from repro.hw.plio import (
    PlioAllocator,
    PlioDirection,
    PlioExhaustedError,
    PlioPort,
)
from repro.hw.specs import VCK5000


class TestPlioPort:
    def test_64bit_at_500mhz_is_4gbs(self):
        port = PlioPort("a", PlioDirection.PL_TO_AIE, width_bits=64, clock_hz=500e6)
        assert port.bandwidth == pytest.approx(4e9)

    def test_128bit_at_half_clock_same_bandwidth(self):
        """Section III: 128-bit runs at 0.5x frequency — same 4 GB/s."""
        wide = PlioPort("a", PlioDirection.PL_TO_AIE, width_bits=128, clock_hz=250e6)
        assert wide.bandwidth == pytest.approx(4e9)

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError):
            PlioPort("a", PlioDirection.PL_TO_AIE, width_bits=96)


class TestAllocator:
    def test_allocate_tracks_directions(self):
        alloc = PlioAllocator()
        alloc.allocate("a0", PlioDirection.PL_TO_AIE)
        alloc.allocate("c0", PlioDirection.AIE_TO_PL)
        assert alloc.used_in == 1
        assert alloc.used_out == 1
        assert alloc.used_total == 2

    def test_allocate_many(self):
        alloc = PlioAllocator()
        ports = alloc.allocate_many("b", PlioDirection.PL_TO_AIE, 4)
        assert len(ports) == 4
        assert alloc.used_in == 4

    def test_budget_exhaustion(self):
        alloc = PlioAllocator()
        for i in range(VCK5000.usable_plios):
            direction = (
                PlioDirection.PL_TO_AIE if i % 2 == 0 else PlioDirection.AIE_TO_PL
            )
            alloc.allocate(f"p{i}", direction)
        with pytest.raises(PlioExhaustedError):
            alloc.allocate("overflow", PlioDirection.PL_TO_AIE)

    def test_remaining_decreases(self):
        alloc = PlioAllocator()
        before = alloc.remaining_total
        alloc.allocate("x", PlioDirection.PL_TO_AIE)
        assert alloc.remaining_total == before - 1


class TestReplication:
    """The Fig. 13 right-axis arithmetic."""

    def test_36_plio_scheme_replicates_7_times(self):
        assert PlioAllocator().max_replicas(36, 16) == 7

    def test_7_plio_scheme_replicates_25_times(self):
        """AIE-limited: 400 / 16 = 25."""
        assert PlioAllocator().max_replicas(7, 16) == 25

    def test_utilization_28_pct_for_36_plios(self):
        assert PlioAllocator().array_utilization(36, 16) == pytest.approx(0.28)

    def test_utilization_100_pct_for_7_plios(self):
        assert PlioAllocator().array_utilization(7, 16) == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            PlioAllocator().max_replicas(0, 16)
