"""NoC port-assignment model tests (Section IV-C)."""

import pytest

from repro.hw.noc import NocModel, VC_EFFECTIVE_BANDWIDTH


class TestPublishedOperatingPoints:
    def test_2r1w_achieves_20_gbs(self):
        assert NocModel().achieved_bandwidth(3) == pytest.approx(20e9, rel=0.01)

    def test_4r2w_achieves_34_gbs(self):
        assert NocModel().achieved_bandwidth(6) == pytest.approx(34e9, rel=0.01)

    def test_more_ports_plateau_at_34_gbs(self):
        """The paper could not exceed 34 GB/s regardless of port count."""
        noc = NocModel()
        for ports in (8, 10, 12):
            assert noc.achieved_bandwidth(ports) == pytest.approx(34e9, rel=0.01)

    def test_utilization_is_34_pct_at_plateau(self):
        assert NocModel().utilization(6) == pytest.approx(0.34, abs=0.02)


class TestMechanism:
    def test_assignment_is_lane_major(self):
        assignments = NocModel(lane_spread=3).assign_ports(6)
        assert [a.lane for a in assignments] == [0, 1, 2, 0, 1, 2]
        assert [a.vc for a in assignments] == [0, 0, 0, 1, 1, 1]

    def test_lanes_used_bounded_by_spread(self):
        noc = NocModel(lane_spread=2)
        assert noc.lanes_used(8) == 2

    def test_bandwidth_monotone_in_ports(self):
        noc = NocModel()
        values = [noc.achieved_bandwidth(p) for p in range(1, 12)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_second_vc_adds_less_than_first(self):
        noc = NocModel()
        first = noc.lane_bandwidth(1)
        second = noc.lane_bandwidth(2) - first
        assert 0 < second < first

    def test_third_vc_adds_nothing(self):
        noc = NocModel()
        assert noc.lane_bandwidth(3) == noc.lane_bandwidth(2)

    def test_lane_never_exceeds_physical_limit(self):
        noc = NocModel()
        for vcs in range(1, 9):
            assert noc.lane_bandwidth(vcs) <= 16e9

    def test_plateau_bandwidth(self):
        assert NocModel().plateau_bandwidth() == pytest.approx(34e9, rel=0.01)

    def test_full_spread_what_if_beats_default(self):
        """A steerable NoC (4-lane spread) would beat the Vitis default."""
        default = NocModel().achieved_bandwidth(8)
        steerable = NocModel(lane_spread=4).achieved_bandwidth(8)
        assert steerable > default


class TestValidation:
    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            NocModel().assign_ports(0)

    def test_rejects_excess_ports(self):
        with pytest.raises(ValueError, match="virtual channels"):
            NocModel(lane_spread=1).assign_ports(9)

    def test_rejects_bad_spread(self):
        with pytest.raises(ValueError):
            NocModel(lane_spread=0)
        with pytest.raises(ValueError):
            NocModel(lane_spread=5)

    def test_vc_bandwidth_calibration_constant(self):
        assert VC_EFFECTIVE_BANDWIDTH == pytest.approx(20e9 / 3)
