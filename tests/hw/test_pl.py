"""PL memory budget tests."""

import pytest

from repro.hw.pl import PlBufferRequirement, PlMemoryBudget
from repro.hw.specs import VCK5000


class TestRequirements:
    def test_double_buffering_doubles(self):
        req = PlBufferRequirement("a", 1024, double_buffered=True)
        assert req.total_bytes == 2048

    def test_single_buffering(self):
        req = PlBufferRequirement("a", 1024, double_buffered=False)
        assert req.total_bytes == 1024


class TestBudget:
    def test_capacity_is_usable_fraction(self):
        budget = PlMemoryBudget()
        assert budget.capacity_bytes == VCK5000.pl_usable_bytes
        assert budget.raw_bytes == VCK5000.pl_memory_bytes

    def test_fits_small(self):
        budget = PlMemoryBudget()
        reqs = [PlBufferRequirement("a", 1 << 20, True)]
        assert budget.fits(reqs)

    def test_rejects_oversized(self):
        budget = PlMemoryBudget()
        reqs = [PlBufferRequirement("a", VCK5000.pl_memory_bytes, True)]
        assert not budget.fits(reqs)

    def test_occupancy(self):
        budget = PlMemoryBudget()
        reqs = [PlBufferRequirement("a", budget.capacity_bytes // 2, False)]
        assert budget.occupancy(reqs) == pytest.approx(0.5)

    def test_required_bytes_sums(self):
        budget = PlMemoryBudget()
        reqs = [
            PlBufferRequirement("a", 100, True),
            PlBufferRequirement("b", 50, False),
        ]
        assert budget.required_bytes(reqs) == 250


class TestBramBanking:
    def test_zero_bytes_zero_banks(self):
        assert PlMemoryBudget().bram_banks_for(0) == 0

    def test_small_buffer_takes_whole_bram(self):
        """Section V-J: small wide buffers underutilise BRAMs."""
        assert PlMemoryBudget().bram_banks_for(64) == 1

    def test_banks_scale_with_capacity(self):
        budget = PlMemoryBudget()
        bram_bytes = VCK5000.bram_bits // 8
        assert budget.bram_banks_for(3 * bram_bytes) == 3
