"""AIE memory-bank model tests."""

import pytest

from repro.hw.memory import (
    BANK_BYTES,
    NUM_BANKS,
    AllocationError,
    TileMemory,
    canonical_gemm_placement,
    conflict_factor,
)


class TestGeometry:
    def test_four_banks_of_8kb(self):
        assert NUM_BANKS * BANK_BYTES == 32 * 1024  # the tile's 32 KB


class TestAllocator:
    def test_single_bank_fit(self):
        memory = TileMemory()
        allocation = memory.allocate("buf", 4096)
        assert allocation.spans_banks == 1
        assert memory.total_free == 32 * 1024 - 4096

    def test_prefer_bank(self):
        memory = TileMemory()
        allocation = memory.allocate("buf", 1024, prefer_bank=2)
        assert allocation.banks == (2,)

    def test_spill_across_banks(self):
        memory = TileMemory()
        allocation = memory.allocate("big", 12 * 1024)  # > one 8 KB bank
        assert allocation.spans_banks == 2

    def test_exhaustion_raises(self):
        memory = TileMemory()
        memory.allocate("a", 30 * 1024)
        with pytest.raises(AllocationError):
            memory.allocate("b", 4 * 1024)

    def test_fill_exactly(self):
        memory = TileMemory()
        memory.allocate("all", 32 * 1024)
        assert memory.total_free == 0

    def test_banks_of_lookup(self):
        memory = TileMemory()
        memory.allocate("x", 100, prefer_bank=3)
        assert memory.banks_of("x") == (3,)
        with pytest.raises(KeyError):
            memory.banks_of("ghost")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TileMemory().allocate("x", 0)
        with pytest.raises(ValueError):
            TileMemory().allocate("x", 10, prefer_bank=9)


class TestConflicts:
    def test_disjoint_banks_no_conflict(self):
        memory = TileMemory()
        compute = [memory.allocate("c", 1024, prefer_bank=0)]
        dma = [memory.allocate("d", 1024, prefer_bank=2)]
        assert conflict_factor(compute, dma) == 1.0

    def test_shared_bank_conflicts(self):
        memory = TileMemory()
        compute = [memory.allocate("c", 1024, prefer_bank=0)]
        dma = [memory.allocate("d", 1024, prefer_bank=0)]
        assert conflict_factor(compute, dma) == 2.0

    def test_empty_sets(self):
        assert conflict_factor([], []) == 1.0


class TestCanonicalPlacement:
    def test_paper_kernel_is_conflict_free(self):
        """The 32x32x32 FP32 kernel (4 KB operands) places ping/pong on
        disjoint banks — the structural reason double buffering overlaps
        without stealing compute cycles."""
        memory, factor = canonical_gemm_placement(4096, 4096, 4096)
        assert factor == 1.0
        assert memory.total_free == 32 * 1024 - 6 * 4096

    def test_int8_kernel_also_conflict_free(self):
        _, factor = canonical_gemm_placement(4096, 4096, 4096)
        assert factor == 1.0

    def test_oversized_operands_force_conflicts(self):
        """Operands beyond the double-buffer rule spill across banks and
        start conflicting — the micro-level cost of neighbour-memory
        kernels."""
        _, factor = canonical_gemm_placement(6 * 1024, 6 * 1024, 4 * 1024)
        assert factor > 1.0
