"""DMA engine tests."""

import pytest

from repro.hw.dma import MAX_BURST_BYTES, DmaEngine, DmaPort


@pytest.fixture
def engine():
    return DmaEngine(DmaPort("rd0"))


class TestPort:
    def test_physical_bandwidth_512bit_230mhz(self):
        """Section IV-C: 512-bit ports at the 230 MHz PL clock."""
        assert DmaPort("p").physical_bandwidth == pytest.approx(64 * 230e6)

    def test_sustained_limited_by_noc(self, engine):
        """The NoC virtual channel, not the port, is the ceiling."""
        assert engine.sustained_bandwidth < engine.port.physical_bandwidth
        assert engine.sustained_bandwidth == pytest.approx(engine.dram.port_bandwidth())


class TestTransfers:
    def test_zero_bytes(self, engine):
        transfer = engine.transfer(0)
        assert transfer.seconds == 0.0 and transfer.bursts == 0

    def test_burst_segmentation(self, engine):
        transfer = engine.transfer(3 * MAX_BURST_BYTES + 1)
        assert transfer.bursts == 4

    def test_single_burst_for_small_transfer(self, engine):
        assert engine.transfer(4096).bursts == 1

    def test_rejects_negative(self, engine):
        with pytest.raises(ValueError):
            engine.transfer(-1)

    def test_time_monotone_in_size(self, engine):
        times = [engine.transfer(1 << i).seconds for i in range(10, 26, 2)]
        assert all(b > a for a, b in zip(times, times[1:]))


class TestEfficiency:
    def test_small_transfers_inefficient(self, engine):
        """The paper's 'DRAM bandwidth efficiency is low for smaller
        sizes' observation, at descriptor granularity."""
        assert engine.efficiency(4 * 1024) < 0.3

    def test_large_transfers_near_sustained(self, engine):
        assert engine.efficiency(64 * 2**20) > 0.9

    def test_efficiency_monotone(self, engine):
        values = [engine.efficiency(1 << i) for i in range(12, 26, 2)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_bytes_zero_efficiency(self, engine):
        assert engine.efficiency(0) == 0.0
