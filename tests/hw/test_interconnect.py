"""Fig. 8 communication-scheme model tests."""

import pytest

from repro.hw.interconnect import CommScheme, CommTimingModel
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

FP32_KERNEL = GemmShape.square(32)
INT8_KERNEL = GemmShape.square(64)


@pytest.fixture
def model():
    return CommTimingModel()


class TestCascadeBaseline:
    def test_cascade_has_zero_overhead(self, model):
        for precision, kernel in ((Precision.FP32, FP32_KERNEL), (Precision.INT8, INT8_KERNEL)):
            timing = model.chain_timing(CommScheme.CASCADE, precision, kernel, 16)
            assert timing.stall_cycles == 0.0
            assert timing.overhead_ratio == 1.0

    def test_cascade_is_lowest_latency_everywhere(self, model):
        """The paper's conclusion: cascade wins in all four panels."""
        for precision, kernel, counts in (
            (Precision.FP32, FP32_KERNEL, (16, 384)),
            (Precision.INT8, INT8_KERNEL, (16, 256)),
        ):
            for num_aies in counts:
                cascade = model.chain_timing(
                    CommScheme.CASCADE, precision, kernel, num_aies
                ).total_cycles
                for scheme in CommScheme:
                    timing = model.chain_timing(scheme, precision, kernel, num_aies)
                    if timing.feasible:
                        assert timing.total_cycles >= cascade


class TestSmallArrayFp32:
    """Fig. 8 left-top: FP32, 16 AIEs."""

    def test_double_buffer_about_1pct(self, model):
        r = model.normalized_to_cascade(CommScheme.BUFFER_DOUBLE, Precision.FP32, FP32_KERNEL, 16)
        assert 1.0 < r < 1.03

    def test_single_buffer_about_32pct(self, model):
        r = model.normalized_to_cascade(CommScheme.BUFFER_SINGLE, Precision.FP32, FP32_KERNEL, 16)
        assert 1.25 <= r <= 1.37

    def test_via_switch_up_to_6pct(self, model):
        for scheme in (
            CommScheme.VIA_SWITCH_NEAR,
            CommScheme.VIA_SWITCH_RANDOM,
            CommScheme.VIA_SWITCH_FAR,
        ):
            r = model.normalized_to_cascade(scheme, Precision.FP32, FP32_KERNEL, 16)
            assert 1.0 < r <= 1.06


class TestSmallArrayInt8:
    """Fig. 8 right-top: INT8, 16 AIEs."""

    def test_double_buffer_small(self, model):
        r = model.normalized_to_cascade(CommScheme.BUFFER_DOUBLE, Precision.INT8, INT8_KERNEL, 16)
        assert 1.0 < r < 1.05

    def test_single_buffer_about_78pct(self, model):
        r = model.normalized_to_cascade(CommScheme.BUFFER_SINGLE, Precision.INT8, INT8_KERNEL, 16)
        assert 1.70 <= r <= 1.90

    def test_via_switch_3_2x(self, model):
        """Paper: 3.17x-3.3x for INT8 via-switch."""
        for scheme in (
            CommScheme.VIA_SWITCH_NEAR,
            CommScheme.VIA_SWITCH_RANDOM,
            CommScheme.VIA_SWITCH_FAR,
        ):
            r = model.normalized_to_cascade(scheme, Precision.INT8, INT8_KERNEL, 16)
            assert 3.1 <= r <= 3.4

    def test_int8_more_sensitive_than_fp32(self, model):
        """16x the compute throughput makes INT8 far more communication
        sensitive (the paper's explanation)."""
        fp32 = model.normalized_to_cascade(
            CommScheme.VIA_SWITCH_NEAR, Precision.FP32, FP32_KERNEL, 16
        )
        int8 = model.normalized_to_cascade(
            CommScheme.VIA_SWITCH_NEAR, Precision.INT8, INT8_KERNEL, 16
        )
        assert int8 > 2 * fp32


class TestMaxArray:
    """Fig. 8 bottom panels (calibrated region)."""

    def test_fp32_384_values(self, model):
        db = model.normalized_to_cascade(CommScheme.BUFFER_DOUBLE, Precision.FP32, FP32_KERNEL, 384)
        sb = model.normalized_to_cascade(CommScheme.BUFFER_SINGLE, Precision.FP32, FP32_KERNEL, 384)
        assert db == pytest.approx(1.22, abs=0.01)
        assert sb == pytest.approx(1.32, abs=0.01)

    def test_int8_256_values(self, model):
        db = model.normalized_to_cascade(CommScheme.BUFFER_DOUBLE, Precision.INT8, INT8_KERNEL, 256)
        sb = model.normalized_to_cascade(CommScheme.BUFFER_SINGLE, Precision.INT8, INT8_KERNEL, 256)
        assert db == pytest.approx(1.66, abs=0.01)
        assert sb == pytest.approx(1.76, abs=0.01)

    def test_via_switch_far_infeasible_at_scale(self, model):
        """Paper: max-AIE designs cannot build far via-switch routes."""
        for precision, kernel, count in (
            (Precision.FP32, FP32_KERNEL, 384),
            (Precision.INT8, INT8_KERNEL, 256),
        ):
            assert model.normalized_to_cascade(
                CommScheme.VIA_SWITCH_FAR, precision, kernel, count
            ) is None

    def test_calibrated_flag_set_at_scale_only(self, model):
        small = model.chain_timing(CommScheme.BUFFER_DOUBLE, Precision.FP32, FP32_KERNEL, 16)
        large = model.chain_timing(CommScheme.BUFFER_DOUBLE, Precision.FP32, FP32_KERNEL, 384)
        assert not small.calibrated
        assert large.calibrated


class TestPartialSums:
    def test_partial_bytes_use_accumulator_width(self, model):
        assert model.partial_sum_bytes(FP32_KERNEL, Precision.FP32) == 32 * 32 * 4
        assert model.partial_sum_bytes(INT8_KERNEL, Precision.INT8) == 64 * 64 * 4

    def test_scheme_classification_helpers(self):
        assert CommScheme.VIA_SWITCH_NEAR.is_via_switch
        assert CommScheme.BUFFER_SINGLE.is_buffer
        assert not CommScheme.CASCADE.is_buffer
