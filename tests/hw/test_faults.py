"""Fault-injection tests: graceful degradation of designs and estimates."""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.hw.faults import (
    MIN_USABLE_PLIOS,
    FaultError,
    derate_clock,
    derate_dram,
    disable_aie_columns,
    disable_dram_channels,
    degrade_pl_memory,
    surviving_configs,
)
from repro.hw.specs import VCK5000
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape

WORKLOAD = GemmShape(2048, 2048, 2048)


class TestInjectors:
    def test_disable_columns_shrinks_array(self):
        faulty = disable_aie_columns(VCK5000, 5)
        assert faulty.num_aies == (50 - 5) * 8
        assert faulty.num_interface_tiles < VCK5000.num_interface_tiles
        assert faulty.usable_plios < VCK5000.usable_plios

    def test_disable_channels(self):
        faulty = disable_dram_channels(VCK5000, 2)
        assert faulty.dram_bandwidth == pytest.approx(VCK5000.dram_bandwidth / 2)

    def test_derate_clock(self):
        faulty = derate_clock(VCK5000, 0.8)
        assert faulty.aie_freq_hz == pytest.approx(1e9)
        assert faulty.plio_bandwidth == pytest.approx(3.2e9)

    def test_degrade_pl_memory(self):
        faulty = degrade_pl_memory(VCK5000, 0.5)
        assert faulty.pl_usable_bytes == pytest.approx(
            VCK5000.pl_usable_bytes / 2, rel=0.01
        )

    def test_faults_compose(self):
        faulty = derate_clock(disable_aie_columns(VCK5000, 2), 0.9)
        assert faulty.num_aies == 48 * 8
        assert faulty.aie_freq_hz == pytest.approx(1.125e9)

    @pytest.mark.parametrize(
        "injector, bad",
        [
            (disable_aie_columns, 50),
            (disable_aie_columns, -1),
            (disable_dram_channels, 4),
            (derate_clock, 0.0),
            (derate_clock, 1.5),
            (degrade_pl_memory, 0.0),
        ],
    )
    def test_impossible_faults_rejected(self, injector, bad):
        with pytest.raises(FaultError):
            injector(VCK5000, bad)


class TestDegradation:
    def test_c6_dies_when_columns_fuse_off(self):
        """384 AIEs need 48 of 50 columns; losing 3 kills C6 but the
        smaller configurations survive."""
        faulty = disable_aie_columns(VCK5000, 3)
        survivors = surviving_configs(faulty)
        assert "C6" not in survivors
        assert "C5" in survivors and "C1" in survivors

    def test_all_configs_survive_healthy_device(self):
        assert len(surviving_configs(VCK5000)) == 11

    def test_memory_bound_design_hurt_by_dram_fault(self):
        healthy = AnalyticalModel(CharmDesign(config_by_name("C5"))).estimate(WORKLOAD)
        faulty_device = disable_dram_channels(VCK5000, 2)
        faulty = AnalyticalModel(
            CharmDesign(config_by_name("C5"), device=faulty_device)
        ).estimate(WORKLOAD)
        assert faulty.total_seconds > healthy.total_seconds

    def test_compute_bound_design_hurt_by_clock_derate(self):
        healthy = AnalyticalModel(CharmDesign(config_by_name("C3"))).estimate(WORKLOAD)
        faulty = AnalyticalModel(
            CharmDesign(config_by_name("C3"), device=derate_clock(VCK5000, 0.5))
        ).estimate(WORKLOAD)
        assert faulty.total_seconds > 1.5 * healthy.total_seconds

    def test_pl_memory_fault_increases_traffic(self):
        design = CharmDesign(config_by_name("C5"))
        degraded = CharmDesign(
            config_by_name("C5"), device=degrade_pl_memory(VCK5000, 0.4)
        )
        healthy_traffic = design.tile_plan(WORKLOAD).traffic().total
        faulty_traffic = degraded.tile_plan(WORKLOAD).traffic().total
        assert faulty_traffic >= healthy_traffic

    def test_estimates_remain_consistent_under_faults(self):
        """Model vs simulated HW stays within tolerance on a faulty
        device — the analysis machinery degrades gracefully."""
        from repro.sim.hwsim import HwSimulator

        device = derate_clock(disable_dram_channels(VCK5000, 1), 0.9)
        design = CharmDesign(config_by_name("C4"), device=device)
        _, error = HwSimulator(design).compare_with_model(WORKLOAD)
        assert abs(error) <= 0.05


class TestUniformValidation:
    """Every injector enforces the same argument contract (regression
    for the historically inconsistent per-injector checks)."""

    @pytest.mark.parametrize("injector", [disable_aie_columns, disable_dram_channels])
    @pytest.mark.parametrize("bad", [1.0, 2.5, True, False, "2", None])
    def test_counts_must_be_plain_integers(self, injector, bad):
        with pytest.raises(FaultError, match="integer"):
            injector(VCK5000, bad)

    @pytest.mark.parametrize(
        "injector", [derate_clock, derate_dram, degrade_pl_memory]
    )
    @pytest.mark.parametrize(
        "bad", [0.0, -0.5, 1.0001, float("nan"), float("inf"), True, "half", None]
    )
    def test_fractions_must_be_finite_in_unit_interval(self, injector, bad):
        with pytest.raises(FaultError):
            injector(VCK5000, bad)

    @pytest.mark.parametrize(
        "injector", [derate_clock, derate_dram, degrade_pl_memory]
    )
    def test_full_fraction_is_identity_shaped(self, injector):
        degraded = injector(VCK5000, 1.0)
        assert degraded.num_aies == VCK5000.num_aies

    def test_zero_count_allowed(self):
        assert disable_aie_columns(VCK5000, 0).aie_cols == VCK5000.aie_cols

    def test_derate_dram_scales_channel_bandwidth_only(self):
        degraded = derate_dram(VCK5000, 0.5)
        assert degraded.dram_channel_bandwidth == pytest.approx(
            VCK5000.dram_channel_bandwidth * 0.5
        )
        assert degraded.dram_channels == VCK5000.dram_channels
        assert degraded.name == "VCK5000-drambw-0.5"

    def test_usable_plios_floor(self):
        # fusing off all but one column would strip every PLIO; the
        # degraded spec keeps the minimal routable set instead
        worst = disable_aie_columns(VCK5000, VCK5000.aie_cols - 1)
        assert worst.usable_plios == MIN_USABLE_PLIOS
