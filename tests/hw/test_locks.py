"""Lock-protocol tests: the mechanism behind double buffering."""

import pytest

from repro.hw.locks import (
    LOCK_ACQUIRE_CYCLES,
    LOCK_RELEASE_CYCLES,
    Lock,
    LockState,
    LockedBufferPool,
)


class TestLock:
    def test_acquire_in_matching_state(self):
        lock = Lock("b")
        done = lock.acquire(LockState.FOR_PRODUCER, now=0.0)
        assert done == LOCK_ACQUIRE_CYCLES
        assert lock.acquires == 1

    def test_acquire_in_wrong_state_raises(self):
        lock = Lock("b")
        with pytest.raises(RuntimeError):
            lock.acquire(LockState.FOR_CONSUMER, now=0.0)

    def test_release_flips_state(self):
        lock = Lock("b")
        lock.release(LockState.FOR_CONSUMER, now=0.0)
        assert lock.state is LockState.FOR_CONSUMER


class TestPingPong:
    def test_double_buffer_overlaps(self):
        """With two buffers, producer and consumer pipeline: throughput
        approaches max(produce, consume) per item."""
        pool = LockedBufferPool(2)
        report = pool.stream(items=100, produce_cycles=1000, consume_cycles=1000)
        per_item = report.total_cycles / 100
        overhead = LOCK_ACQUIRE_CYCLES + LOCK_RELEASE_CYCLES
        assert per_item == pytest.approx(1000 + overhead, rel=0.05)

    def test_single_buffer_serialises(self):
        """With one buffer the stream alternates: ~produce + consume per
        item plus two lock round-trips — Fig. 8's single-buffer story."""
        pool = LockedBufferPool(1)
        report = pool.stream(items=100, produce_cycles=1000, consume_cycles=1000)
        per_item = report.total_cycles / 100
        assert per_item == pytest.approx(2 * (1000 + 40), rel=0.05)

    def test_single_buffer_stalls_producer(self):
        single = LockedBufferPool(1).stream(50, 1000, 1000)
        double = LockedBufferPool(2).stream(50, 1000, 1000)
        assert single.producer_stall_cycles > 10 * max(double.producer_stall_cycles, 1)

    def test_lock_overhead_accounting(self):
        report = LockedBufferPool(2).stream(10, 100, 100)
        assert report.lock_overhead_cycles == pytest.approx(
            10 * 2 * (LOCK_ACQUIRE_CYCLES + LOCK_RELEASE_CYCLES)
        )

    def test_stall_per_item_comparable_to_interconnect_calibration(self):
        """The mechanistic ping-pong stall lands in the same range as
        the interconnect model's calibrated single-buffer lock cost."""
        from repro.hw.interconnect import SINGLE_BUFFER_LOCK_CYCLES

        # FP32 cascade-pack case: ~4452-cycle kernels exchanging partials
        report = LockedBufferPool(1).stream(64, 4452, 4452)
        double = LockedBufferPool(2).stream(64, 4452, 4452)
        stall = (report.total_cycles - double.total_cycles) / 64
        # same order of magnitude (the calibration folds in effects the
        # pool model abstracts: memory-port contention, DMA restart)
        assert 0.5 * stall < SINGLE_BUFFER_LOCK_CYCLES * 4 and stall > 100

    def test_zero_items(self):
        report = LockedBufferPool(2).stream(0, 100, 100)
        assert report.total_cycles == 0.0

    def test_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            LockedBufferPool(0)

    def test_asymmetric_rates_bound_by_slower_side(self):
        report = LockedBufferPool(2).stream(100, 500, 2000)
        per_item = report.total_cycles / 100
        assert per_item == pytest.approx(2000 + 40, rel=0.05)
