"""Smoke-run every example script — they must stay working as the
library evolves (they are the documentation users copy from)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # every example prints a real narrative


def test_examples_exist():
    assert len(EXAMPLES) >= 6
