"""Differential identity tests across the scan/table/heap engines.

Parametrized over partition widths 1–16 so the suite crosses both of
the historical auto-dispatch boundaries — the old width-2 vectorized
cap and ``HEAP_MIN_ACCELERATORS`` — on both sides, with and without
fault schedules, on stub and real partitions.
"""

import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.sim.chaos import FaultPolicy, FaultSchedule, chaos_schedule
from repro.sim.serving import HEAP_MIN_ACCELERATORS, ServingSimulator, generate_trace

from .harness import SHAPES, assert_engines_identical, dispatch_rows, make_partition

WIDTHS = list(range(1, 17))


def _trace(num_requests=120, mean_interarrival=2e-3, seed=11):
    return generate_trace(SHAPES, num_requests, mean_interarrival, seed=seed)


def _schedule_for(width):
    """A mixed down/degraded schedule sized to the stub trace timescale."""
    windows = FaultSchedule.down("acc0", 0.02, 0.06)
    if width >= 2:
        windows = windows + FaultSchedule.degraded("acc1", 0.01, 0.12, factor=2.5)
    if width >= 4:
        windows = windows + FaultSchedule.down("acc3", 0.05, 0.09)
    if width >= 7:
        windows = windows + FaultSchedule.degraded("acc6", 0.0, 0.2, factor=4.0)
    return windows


def test_widths_cross_heap_boundary():
    assert WIDTHS[0] < HEAP_MIN_ACCELERATORS <= WIDTHS[-1]


@pytest.mark.parametrize("width", WIDTHS)
def test_engines_identical_fault_free(width):
    assert_engines_identical(_trace(), make_partition(width))


@pytest.mark.parametrize("width", WIDTHS)
def test_engines_identical_under_faults(width):
    partition = make_partition(width)
    result = assert_engines_identical(
        _trace(),
        partition,
        faults=_schedule_for(width),
        policy=FaultPolicy(max_retries=2),
    )
    report = result["report"]
    assert len(report.completed) + len(report.shed) == 120


@pytest.mark.parametrize("width", [2, 5, 8, 13])
def test_engines_identical_under_chaos(width):
    partition = make_partition(width)
    schedule = chaos_schedule(list(partition.designs), 0.25, seed=3)
    assert_engines_identical(_trace(), partition, faults=schedule)


def test_empty_schedule_matches_no_faults():
    """``FaultSchedule(())`` must take the untouched fault-free paths."""
    trace = _trace()
    partition = make_partition(5)
    for engine in ("scan", "table", "heap"):
        plain = ServingSimulator(partition).run(trace, dispatch=engine)
        empty = ServingSimulator(partition).run(
            trace, dispatch=engine, faults=FaultSchedule(())
        )
        assert dispatch_rows(empty) == dispatch_rows(plain)
        assert empty.fault_summary() == plain.fault_summary()


def test_far_future_window_matches_no_faults():
    """A window past the makespan cannot change any dispatch decision."""
    trace = _trace()
    partition = make_partition(4)
    plain = ServingSimulator(partition).run(trace)
    future = FaultSchedule.down("acc0", plain.makespan + 10.0, plain.makespan + 20.0)
    faulted = ServingSimulator(partition).run(trace, faults=future)
    assert dispatch_rows(faulted) == dispatch_rows(plain)
    assert faulted.shed == []
    assert faulted.kills == 0


def test_real_partition_engines_identical():
    partition = AcceleratorPartition([config_by_name("C5"), config_by_name("C3")])
    shapes = [SHAPES[0], SHAPES[1]]
    trace = generate_trace(shapes, 80, 5e-4, seed=3)
    schedule = FaultSchedule.down("C5", 0.004, 0.012) + FaultSchedule.degraded(
        "C3", 0.002, 0.02, factor=3.0
    )
    assert_engines_identical(trace, partition)
    assert_engines_identical(trace, partition, faults=schedule)


def test_fault_runs_deterministic():
    trace = _trace()
    partition = make_partition(6)
    schedule = _schedule_for(6)
    first = ServingSimulator(partition).run(trace, faults=schedule)
    second = ServingSimulator(partition).run(trace, faults=schedule)
    assert dispatch_rows(first) == dispatch_rows(second)
    assert first.fault_summary() == second.fault_summary()


@pytest.mark.parametrize("dispatch", ["scan", "table", "heap", "vectorized", "auto"])
def test_empty_trace_rejected_uniformly(dispatch):
    """Every engine raises the same clear ValueError for an empty trace.

    The contract mirrors ``generate_trace*``'s ``num_requests >= 1``
    validation: an empty trace has no dispatch semantics, so no engine
    gets to pick its own degenerate behaviour.
    """
    import numpy as np

    from repro.sim.streaming import SoATrace

    partition = make_partition(2)
    simulator = ServingSimulator(partition)
    empty_soa = SoATrace(
        shapes=SHAPES,
        shape_ids=np.empty(0, dtype=np.int64),
        arrivals=np.empty(0, dtype=np.float64),
    )
    for trace in ([], empty_soa):
        with pytest.raises(ValueError, match="empty trace"):
            simulator.run(trace, dispatch=dispatch)
        if dispatch != "scan":
            with pytest.raises(ValueError, match="empty trace"):
                simulator.run(trace, dispatch=dispatch, streaming=True)
        with pytest.raises(ValueError, match="empty trace"):
            simulator.run(
                trace, dispatch=dispatch, faults=_schedule_for(2),
                fault_policy=FaultPolicy(max_retries=1),
            )
