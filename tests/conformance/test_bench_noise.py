"""Conformance: the bench harness is a faithful wrapper.

Two contracts, CI-gated on both the native and NumPy dispatch legs:

* **identity** — with ``noise=None`` the harness produces results
  byte-identical to driving :class:`repro.sim.serving.ServingSimulator`
  / :class:`repro.core.analytical_model.AnalyticalModel` directly, for
  every dispatch engine;
* **determinism** — with noise enabled, the same seed yields the
  identical sample stream regardless of ``--jobs`` fan-out, shard
  count, or dispatch-engine choice (wall-clock measurements excluded:
  they measure this process, not the simulated system).
"""

import numpy as np

from repro.bench.experiments import EstimateExperiment, ServingExperiment
from repro.bench.noise import (
    ClockVariabilityNoise,
    DramJitterNoise,
    ThermalDeratingNoise,
    combined_service_factors,
)
from repro.bench.runner import run_bench
from repro.bench.scenarios import (
    MEAN_INTERARRIVAL,
    SERVING_SHAPES,
    build_partition,
)
from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.sim.serving import ServingSimulator
from repro.sim.streaming import generate_trace_soa

ENGINES = ("scan", "table", "heap", "vectorized")
NOISE = [DramJitterNoise(0.1), ThermalDeratingNoise(0.2),
         ClockVariabilityNoise(0.05)]

#: simulated-system metrics (seeded draws); wall/stats metrics measure
#: this process and are exempt from the determinism contract
_SIMULATED = ("p50", "p99", "mean_latency", "throughput_rps",
              "completed_requests", "completed_fraction")


def _simulated_only(sample: dict) -> dict:
    return {name: sample[name] for name in _SIMULATED if name in sample}


class TestNoiselessIdentity:
    def test_serving_matches_direct_run_on_every_engine(self):
        """noise=None: the harness result equals a hand-driven
        simulation of the same pinned trace, per engine."""
        simulator = ServingSimulator(build_partition())
        simulator.prewarm(SERVING_SHAPES)
        trace = generate_trace_soa(
            SERVING_SHAPES, 5000, MEAN_INTERARRIVAL, seed=7
        )
        for engine in ENGINES:
            experiment = ServingExperiment(
                num_requests=5000, dispatch=engine, streaming=False,
                vary_trace=False,
            )
            experiment.prepare()
            sample = experiment.run_repeat(123, None)
            direct = simulator.run(trace, dispatch=engine)
            p50, p99 = direct.latency_percentiles([50, 99])
            assert sample["p50"] == p50, engine
            assert sample["p99"] == p99, engine
            assert sample["mean_latency"] == direct.mean_latency(), engine
            assert sample["throughput_rps"] == direct.throughput_rps, engine
            assert sample["completed_requests"] == len(direct.completed)

    def test_estimate_matches_analytical_model(self):
        experiment = EstimateExperiment(config="C5")
        experiment.prepare()
        sample = experiment.run_repeat(99, None)
        estimate = AnalyticalModel(
            CharmDesign(config_by_name("C5"))
        ).estimate(experiment.workload)
        assert sample["total_seconds"] == estimate.total_seconds
        assert sample["efficiency"] == estimate.efficiency
        assert sample["clock_fraction"] == 1.0


class TestSeedStreamDeterminism:
    def test_jobs_fanout_preserves_sample_stream(self):
        experiment = ServingExperiment(num_requests=5000)
        serial = run_bench(experiment, repeats=4, seed=11, noise=NOISE)
        threaded = run_bench(
            ServingExperiment(num_requests=5000),
            repeats=4, seed=11, noise=NOISE, jobs=4,
        )
        assert [_simulated_only(s) for s in serial.samples] == [
            _simulated_only(s) for s in threaded.samples
        ]

    def test_engine_choice_preserves_sample_stream(self):
        """Noise perturbs service times before dispatch, so every
        exact engine sees the identical perturbed system."""
        streams = []
        for engine in ENGINES:
            experiment = ServingExperiment(
                num_requests=5000, dispatch=engine, streaming=False,
            )
            experiment.prepare()
            streams.append(
                [_simulated_only(experiment.run_repeat(seed, NOISE))
                 for seed in (1, 2)]
            )
        assert all(stream == streams[0] for stream in streams[1:])

    def test_shard_count_preserves_noise_stream(self):
        """The perturbed service table is a pure function of the repeat
        seed — shard fan-out ships the same table to every worker."""
        factors = combined_service_factors(NOISE, 42, 2, len(SERVING_SHAPES))
        again = combined_service_factors(NOISE, 42, 2, len(SERVING_SHAPES))
        assert np.array_equal(factors, again)

        unsharded = ServingExperiment(num_requests=4000)
        sharded = ServingExperiment(
            num_requests=4000, shards=2, start_method="inline"
        )
        unsharded.prepare()
        sharded.prepare()
        a = unsharded._perturbed(42, NOISE)._service_cache
        b = sharded._perturbed(42, NOISE)._service_cache
        assert a == b

    def test_sharded_run_is_deterministic(self):
        experiment = ServingExperiment(
            num_requests=4000, shards=2, start_method="inline"
        )
        experiment.prepare()
        first = _simulated_only(experiment.run_repeat(7, NOISE))
        second = _simulated_only(experiment.run_repeat(7, NOISE))
        assert first == second

    def test_noise_actually_perturbs(self):
        """Sanity: the determinism above is not vacuous — noise changes
        the simulated system relative to the clean run."""
        experiment = ServingExperiment(num_requests=5000, vary_trace=False)
        experiment.prepare()
        clean = experiment.run_repeat(3, None)
        noisy = experiment.run_repeat(3, NOISE)
        assert noisy["p50"] > clean["p50"]
