"""Differential conformance harness for the serving dispatch engines.

The serving engine's core claim is that the scan, table, heap, and
vectorized dispatch paths — and the exact and streaming reports — are
*the same scheduler* expressed four ways.  This module makes that
claim a first-class, reusable assertion instead of an ad-hoc benchmark
check:

* :func:`make_partition` builds stub partitions of any width (1–9+),
  crossing the ``HEAP_MIN_ACCELERATORS`` auto-dispatch boundary, with
  infeasible pairs sprinkled in;
* :func:`assert_engines_identical` runs every engine on the same seeded
  trace (with or without a fault schedule) and diffs the per-request
  assignments byte for byte, plus the exact-vs-streaming summaries.

Import these from any test that adds a new dispatch path or fault
semantic — if the engines can disagree, this is the function that must
catch it.
"""

from __future__ import annotations

from repro.sim.serving import ServingSimulator
from repro.workloads.gemm import GemmShape

#: the default shape mix used by the parametrized conformance tests
SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 2048, 512),
    GemmShape(256, 256, 256),
)


class StubPartition:
    """Hand-authored service times; ``ValueError`` marks infeasible pairs."""

    def __init__(self, services):
        # services: {name: {shape: seconds | None}}
        self.designs = {name: None for name in services}
        self._services = services

    def estimate_on(self, accelerator, shape):
        service = self._services[accelerator].get(shape)
        if service is None:
            raise ValueError(f"{accelerator} cannot serve {shape}")
        return service


def make_partition(width: int, shapes=SHAPES) -> StubPartition:
    """A ``width``-accelerator stub partition with varied services.

    Service times are deterministic functions of the accelerator index
    (so different widths produce genuinely different dispatch dynamics),
    and every third accelerator can't serve the second shape — except
    on one- and two-wide partitions, where each shape keeps at least
    one feasible accelerator.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    services = {}
    for index in range(width):
        per_shape = {
            shape: 0.001 * (1 + ((index + 1) * (position + 3)) % 7)
            for position, shape in enumerate(shapes)
        }
        if width > 2 and index % 3 == 0 and len(shapes) > 1:
            per_shape[shapes[1]] = None
        services[f"acc{index}"] = per_shape
    return StubPartition(services)


def dispatch_rows(report) -> list[tuple]:
    """The byte-comparable per-request assignment list of a report.

    ``repr`` of the float timestamps makes the comparison exact to the
    last bit — two engines that differ by one ULP anywhere fail.
    """
    return [
        (
            c.request.request_id,
            c.accelerator,
            repr(c.start),
            repr(c.finish),
            c.retries,
        )
        for c in report.completed
    ]


def shed_rows(report) -> list[tuple]:
    return [
        (s.request.request_id, s.retries, s.reason, repr(s.time))
        for s in report.shed
    ]


def assert_engines_identical(
    trace,
    partition,
    faults=None,
    policy=None,
    quantile_error: float = 0.01,
) -> dict:
    """Assert all dispatch engines and exact/streaming reports agree.

    Runs each engine on a **fresh** simulator (no shared scheduler
    state), diffs the per-request assignment and shed lists byte for
    byte, then checks the streaming report against the exact one:
    makespan, count, and loads exactly; the mean to float tolerance;
    percentiles within twice the sketch's documented bound.  Returns
    the exact table-engine report's rows for further assertions.
    """
    exact = {}
    for engine in ("scan", "table", "heap", "vectorized"):
        simulator = ServingSimulator(partition)
        exact[engine] = simulator.run(
            trace, dispatch=engine, faults=faults, fault_policy=policy
        )
    base = exact["table"]
    base_rows = dispatch_rows(base)
    base_shed = shed_rows(base)
    for engine in ("scan", "heap", "vectorized"):
        assert dispatch_rows(exact[engine]) == base_rows, (
            f"{engine} dispatch differs from table"
        )
        assert shed_rows(exact[engine]) == base_shed, (
            f"{engine} shed accounting differs from table"
        )
        assert exact[engine].fault_summary() == base.fault_summary(), (
            f"{engine} fault summary differs from table"
        )

    streaming = {}
    for engine in ("table", "heap", "vectorized"):
        simulator = ServingSimulator(partition)
        streaming[engine] = simulator.run(
            trace,
            dispatch=engine,
            streaming=True,
            quantile_error=quantile_error,
            faults=faults,
            fault_policy=policy,
        )
    for engine in ("heap", "vectorized"):
        assert streaming["table"].as_dict() == streaming[engine].as_dict(), (
            f"streaming summaries differ between table and {engine}"
        )

    stream = streaming["table"]
    assert stream.count == len(base.completed)
    assert stream.makespan == base.makespan
    assert stream.accelerator_load() == base.accelerator_load()
    assert stream.fault_summary() == base.fault_summary()
    if base.completed:
        exact_mean = base.mean_latency()
        assert abs(stream.mean_latency() - exact_mean) <= 1e-12 * max(
            1.0, abs(exact_mean)
        )
        bound = 2 * quantile_error
        for percentile in (50, 95, 99):
            exact_value = base.latency_percentile(percentile)
            sketched = stream.latency_percentile(percentile)
            assert abs(sketched - exact_value) <= bound * exact_value, (
                f"p{percentile} outside the sketch bound"
            )
    return {"rows": base_rows, "shed": base_shed, "report": base}
