"""Monitor-attachment identity: telemetry must never steer dispatch.

Two contracts from the windowed-telemetry layer:

* attaching a :class:`~repro.obs.windows.ServingMonitor` to any engine
  (scan/table/heap/vectorized), with or without a fault schedule, leaves
  the dispatch decisions byte-identical to the monitor-off run — the
  monitor only reads chunks after every decision in them is final;
* a sharded fleet's merged window series (per-shard monitors folded in
  shard order) equals the inline single-process reference, across pool
  start methods and shard counts, and equals a hand-merged fold of
  unsharded per-shard runs.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.obs.windows import ServingMonitor
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.cluster_serving import serve_sharded
from repro.sim.serving import ServingSimulator, generate_trace
from repro.sim.streaming import (
    generate_trace_shard,
    generate_trace_soa,
    shard_arrival_offsets,
)
from repro.workloads.gemm import GemmShape

from .harness import SHAPES, dispatch_rows, make_partition, shed_rows

WIDTHS = [1, 2, 3, 7]
ENGINES = ("scan", "table", "heap", "vectorized")

REAL_SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 512, 512),
)
MEAN_INTERARRIVAL = 5e-4

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _trace(num_requests=160, mean_interarrival=2e-3, seed=17):
    return generate_trace(SHAPES, num_requests, mean_interarrival, seed=seed)


def _schedule_for(width):
    windows = FaultSchedule.down("acc0", 0.02, 0.08)
    if width >= 2:
        windows = windows + FaultSchedule.degraded(
            "acc1", 0.01, 0.12, factor=2.5
        )
    return windows


def _window_width(trace):
    horizon = max(request.arrival for request in trace) or 1.0
    return horizon / 20


@pytest.fixture(scope="module")
def simulator():
    partition = AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3")]
    )
    sim = ServingSimulator(partition)
    sim.prewarm(REAL_SHAPES)
    return sim


class TestMonitorDispatchIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_fault_free(self, engine, width):
        partition = make_partition(width)
        trace = _trace()
        baseline = ServingSimulator(partition).run(trace, dispatch=engine)
        monitor = ServingMonitor(_window_width(trace))
        monitored = ServingSimulator(partition).run(
            trace, dispatch=engine, monitor=monitor
        )
        assert dispatch_rows(monitored) == dispatch_rows(baseline), (
            f"{engine} dispatch changed when a monitor was attached"
        )
        # the monitor really watched the run, it just didn't steer it
        assert monitor.requests.total() == len(baseline.completed)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_under_faults(self, engine, width):
        partition = make_partition(width)
        trace = _trace()
        faults = _schedule_for(width)
        policy = FaultPolicy(max_retries=2)
        baseline = ServingSimulator(partition).run(
            trace, dispatch=engine, faults=faults, fault_policy=policy
        )
        monitor = ServingMonitor(_window_width(trace))
        monitored = ServingSimulator(partition).run(
            trace, dispatch=engine, faults=faults, fault_policy=policy,
            monitor=monitor,
        )
        assert dispatch_rows(monitored) == dispatch_rows(baseline)
        assert shed_rows(monitored) == shed_rows(baseline)
        assert monitored.fault_summary() == baseline.fault_summary()
        assert monitor.requests.total() == len(baseline.completed)
        assert monitor.sheds.total() == len(baseline.shed)

    @pytest.mark.parametrize("engine", ("table", "heap", "vectorized"))
    def test_streaming_summary_unchanged(self, engine):
        partition = make_partition(3)
        trace = _trace()
        baseline = ServingSimulator(partition).run(
            trace, dispatch=engine, streaming=True
        )
        monitored = ServingSimulator(partition).run(
            trace, dispatch=engine, streaming=True,
            monitor=ServingMonitor(_window_width(trace)),
        )
        assert monitored.as_dict() == baseline.as_dict()

    def test_monitor_series_identical_across_engines(self):
        """Same decisions + same chunking => same telemetry, bit for bit."""
        partition = make_partition(3)
        trace = _trace()
        states = {}
        for engine in ENGINES:
            monitor = ServingMonitor(_window_width(trace))
            ServingSimulator(partition).run(
                trace, dispatch=engine, monitor=monitor
            )
            states[engine] = monitor.as_dict()
        reference = states.pop("table")
        for engine, state in states.items():
            assert state == reference, f"{engine} telemetry diverged"


class TestShardedMonitorMerge:
    NUM_REQUESTS = 6000
    WINDOW = NUM_REQUESTS * MEAN_INTERARRIVAL / 25

    def _serve(self, simulator, shards, start_method, **kwargs):
        return serve_sharded(
            simulator, REAL_SHAPES, self.NUM_REQUESTS, MEAN_INTERARRIVAL,
            shards=shards, seed=7, start_method=start_method,
            monitor_window=self.WINDOW, **kwargs,
        )

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_inline_merge_equals_hand_merged_shard_runs(
        self, simulator, shards
    ):
        fleet = self._serve(simulator, shards, "inline")
        assert fleet.monitor is not None
        offsets = shard_arrival_offsets(
            self.NUM_REQUESTS, MEAN_INTERARRIVAL, 7, fleet.bounds
        )
        merged = None
        for index, (lo, hi) in enumerate(fleet.bounds):
            sub = generate_trace_shard(
                REAL_SHAPES, self.NUM_REQUESTS, MEAN_INTERARRIVAL, 7,
                lo=lo, hi=hi, arrival_offset=offsets[index],
            )
            monitor = ServingMonitor(self.WINDOW)
            simulator.run(sub, streaming=True, monitor=monitor)
            merged = monitor if merged is None else merged.merge(monitor)
        assert fleet.monitor.as_dict() == merged.as_dict()

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork unavailable")
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_fork_pool_merge_equals_inline(self, simulator, shards):
        fork = self._serve(simulator, shards, "fork", max_workers=2)
        inline = self._serve(simulator, shards, "inline")
        assert fork.monitor.as_dict() == inline.monitor.as_dict()

    def test_spawn_pool_merge_equals_inline(self, simulator):
        spawn = self._serve(simulator, 2, "spawn", max_workers=2)
        inline = self._serve(simulator, 2, "inline")
        assert spawn.monitor.as_dict() == inline.monitor.as_dict()

    def test_faulted_fleet_merge_equals_inline(self, simulator):
        if not FORK_AVAILABLE:
            pytest.skip("fork unavailable")
        kwargs = dict(
            faults=FaultSchedule.down("C5", 0.3, 0.9),
            fault_policy=FaultPolicy(max_retries=1),
        )
        fork = self._serve(simulator, 3, "fork", max_workers=2, **kwargs)
        inline = self._serve(simulator, 3, "inline", **kwargs)
        assert fork.monitor.as_dict() == inline.monitor.as_dict()
        # the merged series saw every outcome the fleet report counted
        assert fork.monitor.requests.total() == fork.report.count
        assert fork.monitor.sheds.total() == fork.report.shed_count

    def test_single_shard_monitor_matches_unsharded_run(self, simulator):
        fleet = self._serve(simulator, 1, "inline")
        monitor = ServingMonitor(self.WINDOW)
        simulator.run(
            generate_trace_soa(
                REAL_SHAPES, self.NUM_REQUESTS, MEAN_INTERARRIVAL, seed=7
            ),
            streaming=True,
            monitor=monitor,
        )
        assert fleet.monitor.as_dict() == monitor.as_dict()

    def test_monitor_absent_unless_requested(self, simulator):
        fleet = serve_sharded(
            simulator, REAL_SHAPES, 200, MEAN_INTERARRIVAL,
            shards=2, seed=7, start_method="inline",
        )
        assert fleet.monitor is None
        assert "monitor" not in fleet.as_dict()
