"""Property-based invariants of the fault-injection event loop.

Hypothesis drives randomized partition widths, fault schedules, and
retry policies through the serving engines and checks the accounting
identities the docs promise: every offered request is either completed
or shed (never both), availability stays in ``[0, 1]``, retry counts
respect the policy budget, kills and retries balance, and runs are
deterministic.  A separate property pins the byte-identity of an empty
``FaultSchedule`` with ``faults=None`` on every engine.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.chaos import FaultPolicy, FaultSchedule  # noqa: E402
from repro.sim.serving import ServingSimulator, generate_trace  # noqa: E402

from .harness import SHAPES, dispatch_rows, make_partition, shed_rows  # noqa: E402


@st.composite
def fault_scenarios(draw):
    width = draw(st.integers(min_value=1, max_value=9))
    schedule = FaultSchedule(())
    for index in range(draw(st.integers(min_value=0, max_value=width))):
        count = draw(st.integers(min_value=1, max_value=3))
        points = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=0.3),
                    min_size=2 * count,
                    max_size=2 * count,
                    unique=True,
                )
            )
        )
        for pair in range(count):
            start, end = points[2 * pair], points[2 * pair + 1]
            if draw(st.booleans()):
                schedule = schedule + FaultSchedule.down(f"acc{index}", start, end)
            else:
                factor = draw(st.floats(min_value=1.0, max_value=5.0))
                schedule = schedule + FaultSchedule.degraded(
                    f"acc{index}", start, end, factor=factor
                )
    policy = FaultPolicy(max_retries=draw(st.integers(min_value=0, max_value=4)))
    num_requests = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=99))
    return width, schedule, policy, num_requests, seed


def _run(width, schedule, policy, num_requests, seed, dispatch="table"):
    trace = generate_trace(SHAPES, num_requests, 2e-3, seed=seed)
    simulator = ServingSimulator(make_partition(width))
    return simulator.run(
        trace, dispatch=dispatch, faults=schedule, fault_policy=policy
    )


@settings(max_examples=40, deadline=None)
@given(fault_scenarios())
def test_completed_and_shed_partition_the_offered_requests(scenario):
    width, schedule, policy, num_requests, seed = scenario
    report = _run(width, schedule, policy, num_requests, seed)
    completed_ids = {c.request.request_id for c in report.completed}
    shed_ids = {s.request.request_id for s in report.shed}
    assert not completed_ids & shed_ids
    assert completed_ids | shed_ids == set(range(num_requests))
    assert len(report.completed) + len(report.shed) == num_requests


@settings(max_examples=40, deadline=None)
@given(fault_scenarios())
def test_availability_bounds(scenario):
    width, schedule, policy, num_requests, seed = scenario
    report = _run(width, schedule, policy, num_requests, seed)
    assert 0.0 <= report.request_availability <= 1.0
    for value in report.availability().values():
        assert 0.0 <= value <= 1.0
    for name, down in report.downtime.items():
        assert down >= 0.0
        assert name in make_partition(width).designs


@settings(max_examples=40, deadline=None)
@given(fault_scenarios())
def test_retry_counts_respect_the_policy_budget(scenario):
    width, schedule, policy, num_requests, seed = scenario
    report = _run(width, schedule, policy, num_requests, seed)
    for completed in report.completed:
        assert 0 <= completed.retries <= policy.max_retries
    for shed in report.shed:
        assert 0 <= shed.retries <= policy.max_retries + 1
        assert shed.reason in ("retry_budget_exhausted", "no_feasible_accelerator")
    assert report.total_retries == report.kills


@settings(max_examples=25, deadline=None)
@given(fault_scenarios())
def test_fault_runs_are_deterministic(scenario):
    width, schedule, policy, num_requests, seed = scenario
    first = _run(width, schedule, policy, num_requests, seed)
    second = _run(width, schedule, policy, num_requests, seed)
    assert dispatch_rows(first) == dispatch_rows(second)
    assert shed_rows(first) == shed_rows(second)
    assert first.fault_summary() == second.fault_summary()


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=9),
    num_requests=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=99),
)
def test_empty_schedule_is_byte_identical_on_every_engine(width, num_requests, seed):
    trace = generate_trace(SHAPES, num_requests, 2e-3, seed=seed)
    partition = make_partition(width)
    for engine in ("scan", "table", "heap"):
        plain = ServingSimulator(partition).run(trace, dispatch=engine)
        empty = ServingSimulator(partition).run(
            trace, dispatch=engine, faults=FaultSchedule(())
        )
        assert dispatch_rows(empty) == dispatch_rows(plain)
        assert shed_rows(empty) == []
        assert empty.fault_summary() == plain.fault_summary()
