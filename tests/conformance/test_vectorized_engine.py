"""Conformance for the vectorized fault-free dispatch engine.

The parametrized width tests in ``test_dispatch_identity`` already run
the vectorized engine through :func:`harness.assert_engines_identical`;
this module covers the engine's own seams: chunk-boundary stress, the
native-vs-NumPy split (the C exact loop and the speculate-and-verify
fallback must be the *same scheduler*), and the fault-segment cut
conditions at ``limit`` / next-down boundaries.
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.sim import dispatch_batch
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.serving import ServingSimulator, generate_trace
from repro.sim.streaming import generate_trace_soa

from .harness import (
    SHAPES,
    assert_engines_identical,
    dispatch_rows,
    make_partition,
)


def _trace(num_requests=300, mean_interarrival=1e-3, seed=19):
    return generate_trace(SHAPES, num_requests, mean_interarrival, seed=seed)


@pytest.fixture
def no_native(monkeypatch):
    """Force the pure-NumPy speculative paths inside this process."""
    monkeypatch.setattr(dispatch_batch, "_native_dispatch", None)
    monkeypatch.setattr(dispatch_batch, "_native_walk", None)


@pytest.mark.parametrize("width", [1, 2])
@pytest.mark.parametrize("chunk_size", [7, 64, 65536])
def test_small_chunk_identity(width, chunk_size):
    """Flush boundaries must not leak into results at any chunk size."""
    partition = make_partition(width)
    trace = _trace()
    base = ServingSimulator(partition).run(
        trace, dispatch="table", chunk_size=chunk_size
    )
    vec = ServingSimulator(partition).run(
        trace, dispatch="vectorized", chunk_size=chunk_size
    )
    assert dispatch_rows(vec) == dispatch_rows(base)
    stream_base = ServingSimulator(partition).run(
        trace, dispatch="table", streaming=True, chunk_size=chunk_size
    )
    stream_vec = ServingSimulator(partition).run(
        trace, dispatch="vectorized", streaming=True, chunk_size=chunk_size
    )
    assert stream_vec.as_dict() == stream_base.as_dict()


@pytest.mark.parametrize("width", [1, 2])
def test_numpy_fallback_identical(no_native, width):
    """The speculative NumPy engine must match scan without the C loop."""
    assert_engines_identical(_trace(), make_partition(width))
    assert_engines_identical(
        _trace(),
        make_partition(width),
        faults=FaultSchedule.down("acc0", 0.02, 0.06),
        policy=FaultPolicy(max_retries=2),
    )


def test_native_and_fallback_agree():
    """C exact loop vs speculate-and-verify on the same segment."""
    if dispatch_batch._native_dispatch is None:
        pytest.skip("no C compiler available")
    soa = generate_trace_soa(SHAPES, 4000, 4e-4, seed=5)
    services = np.asarray(
        [[0.001, 0.004, 0.002], [0.003, 0.001, 0.005]], dtype=np.float64
    )
    for limit, next_downs in [
        (math.inf, (math.inf, math.inf)),
        (float(soa.arrivals[2500]), (math.inf, math.inf)),
        (math.inf, (float(soa.arrivals[1200]) + 0.5, math.inf)),
        (float(soa.arrivals[3000]), (0.9, 1.1)),
    ]:
        free_native = [0.0, 0.0]
        accepted_native, segs_native = dispatch_batch.dispatch_segment(
            soa.arrivals, soa.shape_ids, services, free_native, limit, next_downs
        )
        saved = dispatch_batch._native_dispatch
        dispatch_batch._native_dispatch = None
        try:
            free_py = [0.0, 0.0]
            accepted_py, segs_py = dispatch_batch.dispatch_segment(
                soa.arrivals, soa.shape_ids, services, free_py, limit, next_downs
            )
        finally:
            dispatch_batch._native_dispatch = saved

        def flat(segs):
            rows = []
            for base, accs, starts, fins in segs:
                for off, (acc, start, fin) in enumerate(
                    zip(accs.tolist(), starts.tolist(), fins.tolist())
                ):
                    rows.append((base + off, int(acc), repr(start), repr(fin)))
            return rows

        assert accepted_native == accepted_py
        assert flat(segs_native) == flat(segs_py)
        assert [repr(f) for f in free_native] == [repr(f) for f in free_py]


def test_repro_no_native_env_forces_fallback():
    """``REPRO_NO_NATIVE=1`` must disable the C kernels at import."""
    env = dict(os.environ, REPRO_NO_NATIVE="1")
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    code = (
        "from repro.sim._native import theta_walk, dispatch_exact\n"
        "assert theta_walk is None and dispatch_exact is None\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True, env=env, timeout=120)


def test_walk_fallback_matches_native():
    if dispatch_batch._native_walk is None:
        pytest.skip("no C compiler available")
    rng = np.random.default_rng(21)
    u = np.cumsum(rng.uniform(0.0, 2e-3, 5000)) - rng.uniform(0.0, 1e-3, 5000)
    v = rng.uniform(1e-4, 3e-3, 5000)
    for theta in (-1e-3, 0.0, 2e-3):
        native = dispatch_batch._native_walk(u, v, theta)
        picks = np.zeros(u.size, dtype=bool)
        enders = dispatch_batch._theta_walk(u.tolist(), v.tolist(), theta)
        picks[enders] = True
        assert np.array_equal(native, picks)
