"""Conformance for the vectorized fault-free dispatch engine.

The parametrized width tests in ``test_dispatch_identity`` already run
the vectorized engine through :func:`harness.assert_engines_identical`;
this module covers the engine's own seams: chunk-boundary stress, the
native-vs-NumPy split (the C exact loop and the speculate-and-verify
fallback must be the *same scheduler*), and the fault-segment cut
conditions at ``limit`` / next-down boundaries.
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.sim import dispatch_batch
from repro.sim.chaos import FaultPolicy, FaultSchedule
from repro.sim.serving import ServingSimulator, generate_trace
from repro.sim.streaming import generate_trace_soa

from .harness import (
    SHAPES,
    assert_engines_identical,
    dispatch_rows,
    make_partition,
)


def _trace(num_requests=300, mean_interarrival=1e-3, seed=19):
    return generate_trace(SHAPES, num_requests, mean_interarrival, seed=seed)


@pytest.fixture
def no_native(monkeypatch):
    """Force the pure-NumPy speculative paths inside this process."""
    monkeypatch.setattr(dispatch_batch, "_native_dispatch", None)
    monkeypatch.setattr(dispatch_batch, "_native_walk", None)


@pytest.mark.parametrize("width", [1, 2, 8])
@pytest.mark.parametrize("chunk_size", [7, 64, 65536])
def test_small_chunk_identity(width, chunk_size):
    """Flush boundaries must not leak into results at any chunk size."""
    partition = make_partition(width)
    trace = _trace()
    base = ServingSimulator(partition).run(
        trace, dispatch="table", chunk_size=chunk_size
    )
    vec = ServingSimulator(partition).run(
        trace, dispatch="vectorized", chunk_size=chunk_size
    )
    assert dispatch_rows(vec) == dispatch_rows(base)
    stream_base = ServingSimulator(partition).run(
        trace, dispatch="table", streaming=True, chunk_size=chunk_size
    )
    stream_vec = ServingSimulator(partition).run(
        trace, dispatch="vectorized", streaming=True, chunk_size=chunk_size
    )
    assert stream_vec.as_dict() == stream_base.as_dict()


@pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
def test_numpy_fallback_identical(no_native, width):
    """The speculative NumPy engine must match scan without the C loop."""
    assert_engines_identical(_trace(), make_partition(width))
    assert_engines_identical(
        _trace(),
        make_partition(width),
        faults=FaultSchedule.down("acc0", 0.02, 0.06),
        policy=FaultPolicy(max_retries=2),
    )


def _wide_services(width: int) -> np.ndarray:
    """A ``(width, 3)`` service matrix with varied rows and, above two
    lanes, a sprinkling of ``inf`` (infeasible) entries."""
    services = np.empty((width, 3), dtype=np.float64)
    for index in range(width):
        for position in range(3):
            services[index, position] = 0.001 * (
                1 + ((index + 1) * (position + 3)) % 7
            )
    if width > 2:
        for index in range(0, width, 3):
            services[index, 1] = math.inf
    return services


@pytest.mark.parametrize("width", [2, 3, 5, 8])
def test_native_and_fallback_agree(width):
    """C exact loop vs speculate-and-verify on the same segment.

    Runs the k-wide kernel against the NumPy rounds at widths crossing
    the old two-accelerator native cap, including service matrices with
    infeasible (``inf``) entries: accepted counts, per-request rows,
    and the final free clocks must all be bit-equal.
    """
    if dispatch_batch._native_dispatch is None:
        pytest.skip("no C compiler available")
    soa = generate_trace_soa(SHAPES, 4000, 4e-4, seed=5)
    services = _wide_services(width)
    for limit, next_downs in [
        (math.inf, (math.inf,) * width),
        (float(soa.arrivals[2500]), (math.inf,) * width),
        (math.inf, (float(soa.arrivals[1200]) + 0.5,) + (math.inf,) * (width - 1)),
        (
            float(soa.arrivals[3000]),
            tuple(0.9 + 0.1 * order for order in range(width)),
        ),
    ]:
        free_native = [0.0] * width
        accepted_native, segs_native = dispatch_batch.dispatch_segment(
            soa.arrivals, soa.shape_ids, services, free_native, limit, next_downs
        )
        saved = dispatch_batch._native_dispatch
        dispatch_batch._native_dispatch = None
        try:
            free_py = [0.0] * width
            accepted_py, segs_py = dispatch_batch.dispatch_segment(
                soa.arrivals, soa.shape_ids, services, free_py, limit, next_downs
            )
        finally:
            dispatch_batch._native_dispatch = saved

        def flat(segs):
            rows = []
            for base, accs, starts, fins in segs:
                for off, (acc, start, fin) in enumerate(
                    zip(accs.tolist(), starts.tolist(), fins.tolist())
                ):
                    rows.append((base + off, int(acc), repr(start), repr(fin)))
            return rows

        assert accepted_native == accepted_py
        assert flat(segs_native) == flat(segs_py)
        assert [repr(f) for f in free_native] == [repr(f) for f in free_py]


def test_repro_no_native_env_forces_fallback():
    """``REPRO_NO_NATIVE=1`` must disable the C kernels at import."""
    env = dict(os.environ, REPRO_NO_NATIVE="1")
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    code = (
        "from repro.sim._native import NATIVE_AVAILABLE, theta_walk, dispatch_exact\n"
        "assert theta_walk is None and dispatch_exact is None\n"
        "assert NATIVE_AVAILABLE is False\n"
        "from repro.sim.dispatch_batch import native_available\n"
        "assert native_available() is False\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True, env=env, timeout=120)


def test_native_available_tracks_monkeypatch(no_native):
    """``native_available()`` reads the module state dynamically, so the
    auto engine selector sees the same view the tests force."""
    assert dispatch_batch.native_available() is False


def test_nan_service_raises_for_explicit_vectorized():
    """A NaN service entry must fail loudly, naming the culprit."""
    from .harness import StubPartition

    partition = StubPartition(
        {
            "good": {shape: 0.002 for shape in SHAPES},
            "broken": {
                SHAPES[0]: float("nan"),
                SHAPES[1]: 0.003,
                SHAPES[2]: 0.004,
            },
        }
    )
    trace = _trace(num_requests=50)
    with pytest.raises(ValueError, match="'broken'"):
        ServingSimulator(partition).run(trace, dispatch="vectorized")
    with pytest.raises(ValueError, match="NaN"):
        ServingSimulator(partition).run(
            trace, dispatch="vectorized", streaming=True
        )
    with pytest.raises(ValueError, match="vectorized"):
        ServingSimulator(partition).run(
            trace,
            dispatch="vectorized",
            faults=FaultSchedule.down("good", 0.01, 0.02),
        )


@pytest.mark.parametrize("width", [3, 8])
def test_explicit_vectorized_legal_at_any_width(width):
    """``dispatch="vectorized"`` no longer silently falls back on wide
    fleets: it runs the k-wide engine and matches the table engine."""
    partition = make_partition(width)
    trace = _trace()
    base = ServingSimulator(partition).run(trace, dispatch="table")
    vec = ServingSimulator(partition).run(trace, dispatch="vectorized")
    assert dispatch_rows(vec) == dispatch_rows(base)


def test_walk_fallback_matches_native():
    if dispatch_batch._native_walk is None:
        pytest.skip("no C compiler available")
    rng = np.random.default_rng(21)
    u = np.cumsum(rng.uniform(0.0, 2e-3, 5000)) - rng.uniform(0.0, 1e-3, 5000)
    v = rng.uniform(1e-4, 3e-3, 5000)
    for theta in (-1e-3, 0.0, 2e-3):
        native = dispatch_batch._native_walk(u, v, theta)
        picks = np.zeros(u.size, dtype=bool)
        enders = dispatch_batch._theta_walk(u.tolist(), v.tolist(), theta)
        picks[enders] = True
        assert np.array_equal(native, picks)
