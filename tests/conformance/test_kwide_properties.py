"""Property-based conformance for the k-wide speculation rounds.

Hypothesis drives random partition widths, service matrices (with
infeasible ``inf`` entries), initial free clocks, and fault-segment
``limit``/next-down constraints through :func:`dispatch_segment` and
checks the result bit for bit against the pure-Python exact reference
loop (:func:`repro.sim._native._reference_dispatch` — the same mirror
the native build self-checks against).  Both the NumPy
speculate-and-verify path and, when a compiler is present, the native
k-wide kernel must reproduce the reference's accepted prefix, rows,
and final free clocks exactly.
"""

import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim import dispatch_batch  # noqa: E402
from repro.sim._native import _reference_dispatch  # noqa: E402

_FLOATS = st.floats(min_value=1e-4, max_value=2e-2, allow_nan=False)


@st.composite
def segment_cases(draw):
    width = draw(st.integers(min_value=1, max_value=8))
    classes = draw(st.integers(min_value=1, max_value=3))
    services = np.empty((width, classes), dtype=np.float64)
    for order in range(width):
        for cid in range(classes):
            if width > 1 and draw(st.booleans()) and draw(st.booleans()):
                services[order, cid] = math.inf
            else:
                services[order, cid] = draw(_FLOATS)
    for cid in range(classes):
        if not np.isfinite(services[:, cid]).any():
            services[draw(st.integers(0, width - 1)), cid] = draw(_FLOATS)
    n = draw(st.integers(min_value=1, max_value=60))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=8e-3, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    times = np.cumsum(np.asarray(gaps))
    class_ids = np.asarray(
        draw(
            st.lists(
                st.integers(0, classes - 1), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    free = [draw(st.floats(min_value=0.0, max_value=5e-2)) for _ in range(width)]
    horizon = float(times[-1])
    # the fault loop only batches times strictly below ``limit``, so the
    # generated limit always exceeds every arrival (busy starts may
    # still reach it)
    if draw(st.booleans()):
        limit = math.inf
    else:
        limit = horizon + draw(st.floats(min_value=1e-6, max_value=0.1))
    next_downs = tuple(
        math.inf
        if draw(st.booleans())
        else draw(st.floats(min_value=0.0, max_value=horizon + 0.1))
        for _ in range(width)
    )
    return services, times, class_ids, free, limit, next_downs


def _segment_rows(segments):
    rows = []
    for base, accs, starts, fins in segments:
        for off, (acc, start, fin) in enumerate(
            zip(accs.tolist(), starts.tolist(), fins.tolist())
        ):
            rows.append((base + off, int(acc), repr(start), repr(fin)))
    return rows


@settings(max_examples=120, deadline=None)
@given(case=segment_cases())
def test_kwide_rounds_match_scalar_reference(case):
    services, times, class_ids, free, limit, next_downs = case
    ref_state = list(free)
    expect = _reference_dispatch(
        times.tolist(),
        class_ids.tolist(),
        services.tolist(),
        ref_state,
        limit,
        next_downs,
    )
    expect_rows = [
        (pos, acc, repr(start), repr(fin))
        for pos, (acc, start, fin) in enumerate(expect)
    ]

    saved = dispatch_batch._native_dispatch
    dispatch_batch._native_dispatch = None
    try:
        free_py = list(free)
        accepted, segments = dispatch_batch.dispatch_segment(
            times, class_ids, services, free_py, limit, next_downs
        )
    finally:
        dispatch_batch._native_dispatch = saved
    assert accepted == len(expect)
    assert _segment_rows(segments) == expect_rows
    assert [repr(value) for value in free_py] == [
        repr(value) for value in ref_state
    ]

    if saved is not None:
        free_native = list(free)
        accepted_native, segments_native = dispatch_batch.dispatch_segment(
            times, class_ids, services, free_native, limit, next_downs
        )
        assert accepted_native == len(expect)
        assert _segment_rows(segments_native) == expect_rows
        assert [repr(value) for value in free_native] == [
            repr(value) for value in ref_state
        ]
