"""Unit tests: noise-model determinism, ranges, and spec parsing."""

import numpy as np
import pytest

from repro.bench.noise import (
    ClockVariabilityNoise,
    DramJitterNoise,
    NoiseModel,
    ThermalDeratingNoise,
    combined_clock_fraction,
    combined_service_factors,
    combined_stage_factor,
    parse_noise_spec,
)


class TestParseNoiseSpec:
    def test_empty_and_none_disable(self):
        assert parse_noise_spec(None) == []
        assert parse_noise_spec("") == []
        assert parse_noise_spec("none") == []

    def test_default_amplitudes(self):
        models = parse_noise_spec("dram,thermal,clock")
        assert [m.name for m in models] == ["dram", "thermal", "clock"]
        assert models[0].amplitude == 0.1
        assert models[1].amplitude == 0.2
        assert models[2].amplitude == 0.05

    def test_explicit_amplitudes(self):
        models = parse_noise_spec("dram:0.25,clock:0.1")
        assert models[0].amplitude == 0.25
        assert models[1].amplitude == 0.1

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown noise kind"):
            parse_noise_spec("cosmic:0.5")

    def test_rejects_duplicate_kind(self):
        with pytest.raises(ValueError, match="twice"):
            parse_noise_spec("dram:0.1,dram:0.2")

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            parse_noise_spec("dram:-1")
        with pytest.raises(ValueError):
            parse_noise_spec("clock:1.5")
        with pytest.raises(ValueError):
            parse_noise_spec("dram:abc")


class TestDeterminism:
    def test_same_seed_identical_factors(self):
        model = DramJitterNoise(0.1)
        a = model.service_factors(1234, 3, 4)
        b = model.service_factors(1234, 3, 4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        model = DramJitterNoise(0.1)
        assert not np.array_equal(
            model.service_factors(1, 3, 4), model.service_factors(2, 3, 4)
        )

    def test_composed_models_draw_disjoint_streams(self):
        """Adding a second model never shifts the first one's draws."""
        dram = DramJitterNoise(0.1)
        alone = dram.service_factors(77, 2, 3)
        composed = combined_service_factors(
            [dram, ThermalDeratingNoise(0.2)], 77, 2, 3
        )
        thermal_factor = ThermalDeratingNoise(0.2).service_factors(77, 2, 3)
        assert np.allclose(composed, alone * thermal_factor)

    def test_streams_are_distinct_constants(self):
        streams = {
            type(model).stream
            for model in (DramJitterNoise(), ThermalDeratingNoise(),
                          ClockVariabilityNoise())
        }
        assert len(streams) == 3
        assert NoiseModel.stream not in streams


class TestRanges:
    def test_dram_factors_only_slow_down(self):
        factors = DramJitterNoise(0.1).service_factors(5, 4, 4)
        assert np.all(factors >= 1.0)
        assert np.all(factors <= 1.1)
        # independent per cell: not all equal
        assert np.unique(factors).size > 1

    def test_thermal_factor_uniform_across_grid(self):
        factors = ThermalDeratingNoise(0.2).service_factors(5, 4, 4)
        assert np.unique(factors).size == 1
        assert 1.0 <= factors[0, 0] <= 1.2

    def test_clock_fraction_bounds(self):
        model = ClockVariabilityNoise(0.05)
        for seed in range(20):
            fraction = model.clock_fraction(seed)
            assert 0.95 <= fraction <= 1.0

    def test_clock_service_factors_invert_fraction(self):
        model = ClockVariabilityNoise(0.05)
        factors = model.service_factors(9, 2, 2)
        assert np.allclose(factors, 1.0 / model.clock_fraction(9))

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            DramJitterNoise(0.0)
        with pytest.raises(ValueError):
            ThermalDeratingNoise(-0.5)
        with pytest.raises(ValueError):
            ClockVariabilityNoise(1.0)


class TestComposition:
    def test_clock_does_not_double_count_in_stage_factor(self):
        """Clock noise flows through clock_fraction only; experiments
        that honour the fraction (estimate via derate_clock, pipeline
        via 1/fraction) must not see it again in the stage factor."""
        model = ClockVariabilityNoise(0.2)
        for seed in range(10):
            assert model.stage_factor(seed) == 1.0
            assert model.clock_fraction(seed) < 1.0

    def test_non_clock_models_leave_fraction_nominal(self):
        assert DramJitterNoise(0.1).clock_fraction(3) == 1.0
        assert ThermalDeratingNoise(0.2).clock_fraction(3) == 1.0

    def test_combined_identity_when_empty(self):
        assert combined_service_factors(None, 1, 2, 2) is None
        assert combined_service_factors([], 1, 2, 2) is None
        assert combined_stage_factor(None, 1) == 1.0
        assert combined_clock_fraction(None, 1) == 1.0

    def test_combined_stage_factor_is_product(self):
        models = [DramJitterNoise(0.1), ThermalDeratingNoise(0.2)]
        expected = models[0].stage_factor(4) * models[1].stage_factor(4)
        assert combined_stage_factor(models, 4) == pytest.approx(expected)

    def test_combined_clock_fraction_in_unit_interval(self):
        fraction = combined_clock_fraction([ClockVariabilityNoise(0.3)], 11)
        assert 0.7 <= fraction <= 1.0
