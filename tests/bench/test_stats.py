"""Unit tests: t-intervals, bootstrap intervals, metric summaries."""

import math

import numpy as np
import pytest

from repro.bench.stats import (
    MetricSummary,
    bootstrap_interval,
    summarize,
    t_critical,
)
from repro.sim.streaming import splitmix_uniforms


class TestTCritical:
    def test_closed_form_values(self):
        # standard Student-t table entries, two-sided
        assert t_critical(4, 0.95) == pytest.approx(2.776, abs=1e-3)
        assert t_critical(1, 0.95) == pytest.approx(12.706, abs=1e-3)
        assert t_critical(10, 0.99) == pytest.approx(3.169, abs=1e-3)
        assert t_critical(30, 0.90) == pytest.approx(1.697, abs=1e-3)

    def test_limits_to_normal_quantile(self):
        assert t_critical(10_000, 0.95) == pytest.approx(1.960, abs=1e-2)
        assert t_critical(10_000, 0.99) == pytest.approx(2.576, abs=1e-2)

    def test_monotone_in_df_and_confidence(self):
        values = [t_critical(df, 0.95) for df in (1, 2, 5, 10, 30, 60, 200)]
        assert values == sorted(values, reverse=True)
        assert t_critical(7, 0.90) < t_critical(7, 0.95) < t_critical(7, 0.99)

    def test_interpolated_df_between_table_rows(self):
        # df=35 sits between the 30 and 40 rows
        assert t_critical(40, 0.95) < t_critical(35, 0.95) < t_critical(30, 0.95)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            t_critical(0, 0.95)
        with pytest.raises(ValueError):
            t_critical(5, 0.80)


class TestSummarize:
    def test_t_interval_matches_closed_form(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        summary = summarize(samples, confidence=0.95)
        mean = 3.0
        std = np.std(samples, ddof=1)
        half = t_critical(4, 0.95) * std / math.sqrt(5)
        assert summary.mean == pytest.approx(mean)
        assert summary.median == pytest.approx(3.0)
        assert summary.std == pytest.approx(std)
        assert summary.ci_low == pytest.approx(mean - half)
        assert summary.ci_high == pytest.approx(mean + half)

    def test_single_sample_degenerates_to_point(self):
        summary = summarize([42.0])
        assert summary.n == 1
        assert summary.ci_low == summary.ci_high == 42.0
        assert summary.boot_low == summary.boot_high == 42.0

    def test_constant_samples_have_zero_width(self):
        summary = summarize([7.0] * 10)
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 7.0
        assert summary.boot_low == summary.boot_high == 7.0

    def test_aggregate_accessor(self):
        summary = summarize([1.0, 3.0])
        assert summary.value("mean") == pytest.approx(2.0)
        assert summary.value("min") == 1.0
        assert summary.value("max") == 3.0
        with pytest.raises(ValueError):
            summary.value("mode")

    def test_as_dict_round_trips(self):
        summary = summarize([1.0, 2.0, 4.0])
        data = summary.as_dict()
        assert data["n"] == 3
        assert data["mean"] == summary.mean
        assert set(data) >= {"ci_low", "ci_high", "boot_low", "boot_high"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestBootstrap:
    def test_seeded_determinism(self):
        samples = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        a = bootstrap_interval(samples, 0.95, seed=3)
        b = bootstrap_interval(samples, 0.95, seed=3)
        assert a == b
        c = bootstrap_interval(samples, 0.95, seed=4)
        assert a != c

    def test_interval_within_sample_range(self):
        samples = [2.0, 4.0, 6.0, 10.0]
        low, high = bootstrap_interval(samples, 0.95, seed=0)
        assert min(samples) <= low <= high <= max(samples)

    def test_tighter_at_lower_confidence(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        low95, high95 = bootstrap_interval(samples, 0.95, seed=1)
        low90, high90 = bootstrap_interval(samples, 0.90, seed=1)
        assert high90 - low90 <= high95 - low95

    def test_coverage_on_uniform_means(self):
        """~95% t-intervals over seeded uniform samples cover the true
        mean (0.5) at roughly the nominal rate."""
        n, trials, covered = 10, 200, 0
        for trial in range(trials):
            draws = splitmix_uniforms(trial, np.arange(n, dtype=np.int64))
            summary = summarize(list(draws), confidence=0.95)
            covered += summary.ci_low <= 0.5 <= summary.ci_high
        assert 0.85 <= covered / trials <= 1.0

    def test_bootstrap_coverage_on_uniform_means(self):
        """Percentile-bootstrap intervals cover the true mean at a rate
        in the right neighbourhood (bootstrap undercovers slightly at
        n=10, so the floor is looser than the t-interval's)."""
        n, trials, covered = 10, 200, 0
        for trial in range(trials):
            draws = splitmix_uniforms(trial, np.arange(n, dtype=np.int64))
            low, high = bootstrap_interval(list(draws), 0.95, seed=trial)
            covered += low <= 0.5 <= high
        assert 0.80 <= covered / trials <= 1.0


class TestMetricSummary:
    def test_frozen(self):
        summary = summarize([1.0, 2.0])
        with pytest.raises(AttributeError):
            summary.mean = 0.0
        assert isinstance(summary, MetricSummary)
