"""Unit tests: the repeated-run driver, probes, and result artifacts."""

import csv
import json

import pytest

from repro.bench.experiments import (
    EstimateExperiment,
    LoadSweepExperiment,
    PipelineExperiment,
)
from repro.bench.noise import DramJitterNoise, ThermalDeratingNoise
from repro.bench.runner import BenchResult, run_bench, write_csv, write_json

#: metrics that are measurements of this process, not seeded draws —
#: the only ones allowed to differ between serial and parallel runs
_WALL_METRICS = ("wall_seconds", "wall_seconds_sweep", "wall_rps")


def _seeded_only(sample: dict) -> dict:
    return {
        name: value
        for name, value in sample.items()
        if name not in _WALL_METRICS and not name.startswith("stats_")
        and not name.startswith("span_")
    }


class TestRunBench:
    def test_basic_result_shape(self):
        result = run_bench(EstimateExperiment(), repeats=3, seed=5)
        assert isinstance(result, BenchResult)
        assert result.kind == "estimate"
        assert result.repeats == 3 and len(result.samples) == 3
        assert "total_seconds" in result.summaries
        assert "wall_seconds" in result.summaries  # timer probe
        assert "stats_evaluations" in result.summaries  # stats probe
        assert result.metric("total_seconds").n == 3

    def test_unknown_metric_raises(self):
        result = run_bench(EstimateExperiment(), repeats=2)
        with pytest.raises(KeyError, match="no metric"):
            result.metric("nope")

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_bench(EstimateExperiment(), repeats=0)

    def test_jobs_parallelism_is_byte_identical(self):
        noise = [DramJitterNoise(0.1), ThermalDeratingNoise(0.2)]
        serial = run_bench(EstimateExperiment(), repeats=6, seed=9, noise=noise)
        threaded = run_bench(
            EstimateExperiment(), repeats=6, seed=9, noise=noise, jobs=3
        )
        assert [_seeded_only(s) for s in serial.samples] == [
            _seeded_only(s) for s in threaded.samples
        ]

    def test_noise_described_in_result(self):
        result = run_bench(
            EstimateExperiment(), repeats=2, noise=[DramJitterNoise(0.25)]
        )
        assert result.noise == ["dram:0.25"]
        assert run_bench(EstimateExperiment(), repeats=2).noise == []

    def test_thermal_noise_slows_pipeline(self):
        clean = run_bench(PipelineExperiment(items=512), repeats=3, seed=2)
        noisy = run_bench(
            PipelineExperiment(items=512), repeats=3, seed=2,
            noise=[ThermalDeratingNoise(0.2)],
        )
        assert (
            noisy.metric("makespan_seconds").min
            > clean.metric("makespan_seconds").max
        )

    def test_sweep_experiment_metrics(self):
        result = run_bench(
            LoadSweepExperiment(offered_loads=[500.0, 1000.0],
                                num_requests=200),
            repeats=2, seed=3,
        )
        assert result.metric("points").mean == 2.0
        assert "max_achieved_rps" in result.summaries


class TestArtifacts:
    def test_write_csv_round_trips(self, tmp_path):
        result = run_bench(EstimateExperiment(), repeats=2, seed=1)
        path = tmp_path / "out.csv"
        write_csv(result, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        names = {row["metric"] for row in rows}
        assert "total_seconds" in names
        row = next(row for row in rows if row["metric"] == "total_seconds")
        assert float(row["mean"]) == result.metric("total_seconds").mean
        assert int(row["n"]) == 2

    def test_write_json_round_trips(self, tmp_path):
        result = run_bench(EstimateExperiment(), repeats=2, seed=1)
        path = tmp_path / "out.json"
        write_json(result, path)
        entry = json.loads(path.read_text())
        assert entry["kind"] == "estimate"
        assert entry["repeats"] == 2
        assert entry["metrics"]["total_seconds"]["n"] == 2
        assert len(entry["samples"]) == 2

    def test_entry_is_json_serializable(self):
        result = run_bench(
            EstimateExperiment(), repeats=2, noise=[DramJitterNoise()]
        )
        blob = json.dumps(result.entry())
        assert "dram:0.1" in blob
