"""CLI tests: ``versal-gemm bench`` exit codes and regression gating.

The acceptance contract lives here: against the committed
``BENCH_serving.json`` the pinned serving scenario passes clean, and an
injected slowdown (``--noise``) exits non-zero through the CLI.
"""

import json

from repro.cli import main

#: the pinned BENCH_serving scenario (trace seed 7, vectorized engine)
_PINNED = ["bench", "serving", "--fixed-trace", "--dispatch", "vectorized",
           "-n", "2", "--requests", "1000000"]


class TestBenchBasics:
    def test_estimate_kind_runs(self, capsys):
        assert main(["bench", "estimate", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "bench estimate: 2 repeats" in out
        assert "total_seconds" in out

    def test_pipeline_kind_runs(self, capsys):
        assert main(["bench", "pipeline", "-n", "2", "--items", "256"]) == 0
        assert "makespan_seconds" in capsys.readouterr().out

    def test_requires_kind_or_smoke(self, capsys):
        assert main(["bench"]) == 2
        assert "pass an experiment kind" in capsys.readouterr().err

    def test_bad_noise_spec(self, capsys):
        assert main(["bench", "estimate", "--noise", "cosmic"]) == 2
        assert "unknown noise kind" in capsys.readouterr().err

    def test_noise_rejected_for_eval_kind(self, capsys):
        assert main(["bench", "eval", "--noise", "dram"]) == 2
        assert "noise models do not apply" in capsys.readouterr().err

    def test_writes_artifacts(self, tmp_path, capsys):
        csv_out = tmp_path / "r.csv"
        json_out = tmp_path / "r.json"
        code = main(["bench", "estimate", "-n", "2",
                     "--csv-out", str(csv_out), "--json-out", str(json_out)])
        assert code == 0
        assert csv_out.exists()
        entry = json.loads(json_out.read_text())
        assert entry["kind"] == "estimate" and entry["repeats"] == 2


class TestBenchRegressionGating:
    def test_committed_serving_baseline_passes_clean(self, capsys):
        """The pinned scenario reproduces BENCH_serving.json's simulated
        percentiles, so the baseline gates hold."""
        code = main(_PINNED + ["--baseline", "BENCH_serving.json"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "p50" in out

    def test_injected_slowdown_fails_committed_baseline(self, capsys):
        """Thermal noise inflates the simulated percentiles beyond the
        tolerance band: the detector must exit non-zero."""
        code = main(_PINNED + ["--noise", "thermal:0.2",
                               "--baseline", "BENCH_serving.json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "regression" in captured.err

    def test_corrupt_baseline_fails_loudly(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        code = main(["bench", "serving", "--fixed-trace", "-n", "2",
                     "--requests", "20000", "--baseline", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "corrupt_baseline" in captured.err

    def test_missing_baseline_file_does_not_fail_optional_gates(self, tmp_path):
        """An absent baseline file only fails gates that require one;
        the serving gates do, so the run reports a regression."""
        code = main(["bench", "serving", "--fixed-trace", "-n", "2",
                     "--requests", "20000",
                     "--baseline", str(tmp_path / "none.json")])
        # p50/p99 gates set require_baseline=True -> regression
        assert code == 1

    def test_baseline_unsupported_for_pipeline_kind(self, tmp_path, capsys):
        (tmp_path / "b.json").write_text("[{}]")
        code = main(["bench", "pipeline", "-n", "2", "--items", "128",
                     "--baseline", str(tmp_path / "b.json")])
        assert code == 2
        assert "no baseline gates" in capsys.readouterr().err


class TestBenchSmoke:
    def test_smoke_small_runs_end_to_end(self, tmp_path, capsys):
        """A reduced --smoke run writes all four artifacts and exits 0
        (simulated percentiles only improve at smaller request counts)."""
        code = main(["bench", "--smoke", "--out-dir", str(tmp_path),
                     "-n", "2", "--requests", "100000"])
        out = capsys.readouterr().out
        assert code == 0, out
        for name in ("bench_smoke_serving.csv", "bench_smoke_serving.json",
                     "bench_smoke_eval.csv", "bench_smoke_eval.json"):
            assert (tmp_path / name).exists()
