"""Unit tests: regression gates, tolerance policy, baseline loading."""

import json

import pytest

from repro.bench.experiments import EstimateExperiment
from repro.bench.regression import (
    EXIT_OK,
    EXIT_REGRESSION,
    BaselineError,
    Gate,
    check_entry,
    check_result,
    exit_code,
    failure_messages,
    load_baseline,
)
from repro.bench.runner import run_bench


class TestGateValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="gate kind"):
            Gate(metric="x", kind="bound", value=1.0)

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            Gate(metric="x", kind="baseline", direction="sideways")

    def test_floor_needs_value(self):
        with pytest.raises(ValueError, match="needs a value"):
            Gate(metric="x", kind="floor")

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            Gate(metric="x", kind="baseline", tolerance=-0.1)


class TestBounds:
    def test_floor_pass_and_regression(self):
        gates = [Gate(metric="speedup", kind="floor", value=2.0)]
        ok = check_entry({"speedup": 3.0}, gates)
        assert [v.status for v in ok] == ["pass"]
        bad = check_entry({"speedup": 1.5}, gates)
        assert [v.status for v in bad] == ["regression"]
        assert bad[0].failed and "below the floor" in bad[0].message

    def test_ceiling(self):
        gates = [Gate(metric="error", kind="ceiling", value=0.01)]
        assert check_entry({"error": 0.005}, gates)[0].status == "pass"
        assert check_entry({"error": 0.02}, gates)[0].status == "regression"

    def test_missing_metric_is_regression(self):
        gates = [Gate(metric="speedup", kind="floor", value=2.0)]
        verdicts = check_entry({}, gates)
        assert verdicts[0].status == "regression"
        assert "missing" in verdicts[0].message

    def test_baseline_recorded_floor_overrides_gate_value(self):
        gates = [Gate(metric="speedup", kind="floor", value=2.0)]
        baseline = {"floors": {"speedup": 5.0}}
        verdicts = check_entry({"speedup": 3.0}, gates, baseline)
        assert verdicts[0].status == "regression"
        assert verdicts[0].reference == 5.0


class TestFlags:
    def test_truthy_passes(self):
        gates = [Gate(metric="identical", kind="flag", label="differs")]
        assert check_entry({"identical": True}, gates)[0].status == "pass"
        bad = check_entry({"identical": False}, gates)
        assert bad[0].status == "regression"
        assert "differs" in bad[0].message


class TestBaselineGates:
    GATES = [Gate(metric="p99", kind="baseline", direction="lower",
                  tolerance=0.10)]

    def test_improvement(self):
        verdicts = check_entry({"p99": 80.0}, self.GATES, {"p99": 100.0})
        assert verdicts[0].status == "improvement"

    def test_within_tolerance(self):
        verdicts = check_entry({"p99": 105.0}, self.GATES, {"p99": 100.0})
        assert verdicts[0].status == "within_tolerance"
        assert not verdicts[0].failed

    def test_regression_beyond_tolerance(self):
        verdicts = check_entry({"p99": 120.0}, self.GATES, {"p99": 100.0})
        assert verdicts[0].status == "regression"
        assert exit_code(verdicts) == EXIT_REGRESSION

    def test_pass_when_slightly_better(self):
        verdicts = check_entry({"p99": 95.0}, self.GATES, {"p99": 100.0})
        assert verdicts[0].status == "pass"

    def test_higher_is_better_direction(self):
        gates = [Gate(metric="speedup", kind="baseline", direction="higher",
                      tolerance=0.10)]
        assert check_entry(
            {"speedup": 15.0}, gates, {"speedup": 10.0}
        )[0].status == "improvement"
        assert check_entry(
            {"speedup": 8.0}, gates, {"speedup": 10.0}
        )[0].status == "regression"

    def test_missing_baseline_reports_without_failing(self):
        verdicts = check_entry({"p99": 80.0}, self.GATES, None)
        assert verdicts[0].status == "missing_baseline"
        assert not verdicts[0].failed
        assert exit_code(verdicts) == EXIT_OK

    def test_missing_baseline_fails_when_required(self):
        gates = [Gate(metric="p99", kind="baseline", require_baseline=True)]
        verdicts = check_entry({"p99": 80.0}, gates, None)
        assert verdicts[0].status == "regression"

    def test_dotted_baseline_metric_path(self):
        gates = [Gate(metric="p50", kind="baseline",
                      baseline_metric="modes.vectorized.p50",
                      tolerance=0.05)]
        baseline = {"modes": {"vectorized": {"p50": 100.0}}}
        assert check_entry({"p50": 100.0}, gates, baseline)[0].status in (
            "pass", "within_tolerance"
        )


class TestWildcardAndWhen:
    def test_wildcard_expands_over_dict(self):
        gates = [Gate(metric="errors.*", kind="ceiling", value=0.01)]
        entry = {"errors": {"2": 0.005, "4": 0.02, "8": 0.001}}
        verdicts = check_entry(entry, gates)
        assert len(verdicts) == 3
        statuses = {v.metric: v.status for v in verdicts}
        assert statuses["errors.4"] == "regression"
        assert statuses["errors.2"] == statuses["errors.8"] == "pass"

    def test_when_disarms_gate(self):
        gates = [Gate(metric="speedup", kind="floor", value=3.0,
                      when="gated")]
        assert check_entry({"speedup": 1.0, "gated": False}, gates) == []
        armed = check_entry({"speedup": 1.0, "gated": True}, gates)
        assert armed[0].status == "regression"


class TestLoadBaseline:
    def test_absent_file_returns_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None

    def test_last_entry_wins(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps([{"p99": 1.0}, {"p99": 2.0}]))
        assert load_baseline(path) == {"p99": 2.0}

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_non_list_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"p99": 1.0}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_empty_list_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_non_dict_entry_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCheckResult:
    def test_aggregates_over_summaries(self):
        result = run_bench(EstimateExperiment(), repeats=3, seed=1)
        gates = [
            Gate(metric="total_seconds", kind="ceiling", value=10.0),
            Gate(metric="clock_fraction", kind="flag"),
            Gate(metric="total_seconds", kind="baseline", direction="lower",
                 tolerance=0.5),
        ]
        baseline = {"total_seconds": result.metric("total_seconds").mean}
        verdicts = check_result(result, gates, baseline)
        assert all(not v.failed for v in verdicts)

    def test_missing_summary_metric_fails_bound(self):
        result = run_bench(EstimateExperiment(), repeats=2, seed=1)
        gates = [Gate(metric="no_such_metric", kind="floor", value=1.0)]
        verdicts = check_result(result, gates)
        assert verdicts[0].status == "regression"

    def test_failure_messages_contract(self):
        verdicts = check_entry(
            {"speedup": 1.0}, [Gate(metric="speedup", kind="floor", value=2.0)]
        )
        messages = failure_messages(verdicts)
        assert len(messages) == 1 and "speedup" in messages[0]
        assert failure_messages([]) == []
