"""Micro-benchmarks of the library itself (real pytest-benchmark rounds).

The experiment benches measure one-shot reproduction runs; these measure
the hot paths a downstream user leans on — the analytical model, the
tile-plan search, the pipeline engine and the functional simulator — so
performance regressions in the library show up here.
"""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.mapping.tiling import plan_tiling
from repro.sim.engine import PipelineSimulator, PipelineStage
from repro.sim.functional import FunctionalGemm
from repro.workloads.gemm import GemmShape

WORKLOAD = GemmShape(2048, 2048, 2048)


@pytest.fixture(scope="module")
def design():
    return CharmDesign(config_by_name("C6"))


def test_perf_analytical_estimate(benchmark, design):
    """Full estimate including the tile-plan search."""
    model = AnalyticalModel(design)
    estimate = benchmark(model.estimate, WORKLOAD)
    assert estimate.total_seconds > 0


def test_perf_estimate_with_cached_plan(benchmark, design):
    """Estimate alone: what a DSE inner loop pays per candidate."""
    model = AnalyticalModel(design)
    plan = design.tile_plan(WORKLOAD)
    estimate = benchmark(model.estimate, WORKLOAD, plan)
    assert estimate.total_seconds > 0


def test_perf_plan_search(benchmark, design):
    plan = benchmark(
        plan_tiling, WORKLOAD, design.native_size, design.precision
    )
    assert plan.num_dram_tiles >= 1


def test_perf_pipeline_engine(benchmark):
    pipeline = PipelineSimulator(
        [
            PipelineStage("load", lambda t: 3.0),
            PipelineStage("aie", lambda t: 5.0),
            PipelineStage("store", lambda t: 1.0),
        ]
    )
    result = benchmark(pipeline.run, 500)
    assert result.makespan > 0


def test_perf_functional_native_tile(benchmark):
    design = CharmDesign(config_by_name("C1"))
    runner = FunctionalGemm(design, seed=0)
    result = benchmark(runner.run, design.native_size)
    assert result.correct
