"""Fig. 7: single-AIE INT8 kernel efficiency across shapes and sizes."""


def test_fig7_single_aie_int8(run_and_render):
    result = run_and_render("fig7")
    # paper: 128x128x128 is the high-efficiency INT8 exception
    best = max(result.rows, key=lambda r: r["efficiency"])
    assert best["shape"] == "128x128x128"
    assert best["needs_neighbor_memory"]
    # INT8's 16x-compute / 4x-data asymmetry leaves kernels
    # communication-bound
    assert any(r["bound"] == "communication" for r in result.rows)
    # the scalable 64^3 kernel keeps high efficiency
    assert result.row_by("shape", "64x64x64")["efficiency"] > 0.85
