"""Ablation benchmarks for the extension studies DESIGN.md calls out."""

import pytest


def test_ext_fusion_ablation(run_and_render):
    """Post-op fusion vs separate pass (Section V-G recommendation)."""
    result = run_and_render("ext_fusion")
    assert all(r["speedup"] > 1.0 for r in result.rows)


def test_ext_fragmentation(run_and_render):
    """Tile size vs padding for DNN shapes (paper future work)."""
    result = run_and_render("ext_fragmentation")
    assert all(0 <= r["waste_pct"] <= 55 for r in result.rows)
    # the headline case: L3's K=128 doubles on C4's K=256 native
    worst = max(result.rows, key=lambda r: r["waste_pct"])
    assert (worst["workload"], worst["configuration"]) == ("L3", "C4")


def test_ext_sensitivity(run_and_render):
    """Architecture-parameter sensitivity curves."""
    result = run_and_render("ext_sensitivity")
    ports = [r for r in result.rows if r["parameter"] == "dram_ports"]
    times = {r["value"]: r["ms"] for r in ports}
    assert times["2r1w"] > times["4r2w"]
    assert times["8r4w"] == pytest.approx(times["4r2w"], rel=0.01)


def test_ext_transformer_e2e(run_and_render):
    """End-to-end transformer estimates across the model zoo."""
    result = run_and_render("ext_transformer")
    assert len(result.rows) == 5
    assert all(r["tflops"] > 0 for r in result.rows)


def test_ext_energy(run_and_render):
    """Energy/efficiency ablation across Table II configurations."""
    result = run_and_render("ext_energy")
    fp32_best = max(r["gflops_per_watt"] for r in result.rows if r["precision"] == "fp32")
    int8_best = max(r["gflops_per_watt"] for r in result.rows if r["precision"] == "int8")
    assert int8_best > 4 * fp32_best


def test_ext_multi_acc(run_and_render):
    """Composed heterogeneous accelerators (CHARM) vs serial execution."""
    result = run_and_render("ext_multi_acc")
    summary = result.panels["summary"][0]
    assert summary["speedup_vs_serial"] > 1.0
    assert summary["makespan_ms"] < summary["serial_ms"]


def test_insights_audit(run_and_render):
    """Every boxed paper insight must hold against the models."""
    result = run_and_render("insights")
    assert all(r["holds"] for r in result.rows)
