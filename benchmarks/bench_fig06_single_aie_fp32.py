"""Fig. 6: single-AIE FP32 kernel efficiency across shapes and sizes."""


def test_fig6_single_aie_fp32(run_and_render):
    result = run_and_render("fig6")
    effs = result.column("efficiency")
    # paper: FP32 kernels achieve 70% to 98% efficiency
    assert min(effs) >= 0.65 and max(effs) <= 0.99
    # most FP32 kernels are compute-bound (8 MACs/cycle is slow)
    compute_bound = [r for r in result.rows if r["bound"] == "compute"]
    assert len(compute_bound) > len(result.rows) / 2
    # kernels over the local 32 KB are flagged (the dotted bars)
    assert result.row_by("shape", "64x64x64")["needs_neighbor_memory"]
    assert not result.row_by("shape", "32x32x32")["needs_neighbor_memory"]
