"""Section V-A: analytical-model accuracy sweep (the +/-5% claim)."""


def test_model_accuracy(run_and_render):
    result = run_and_render("model_accuracy")
    assert len(result.rows) == 11 * 6
    errors = [abs(r["error_pct"]) for r in result.rows]
    # paper: estimates within +/-5% of hardware execution time
    assert max(errors) <= 5.0
