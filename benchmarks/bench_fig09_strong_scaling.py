"""Fig. 9: strong scaling of a 4096^3 GEMM across the Table II configs."""


def test_fig9_strong_scaling(run_and_render):
    result = run_and_render("fig9")
    fp32 = [r["seconds"] for r in result.panels["FP32"]]
    int8 = [r["seconds"] for r in result.panels["INT8"]]

    # paper: latency decreases (steeply at first) left to right
    assert all(b < a for a, b in zip(fp32[:4], fp32[1:5]))
    assert fp32[0] / min(fp32) > 8
    for a, b in zip(int8, int8[1:]):
        assert b <= 1.05 * a
    assert int8[0] / min(int8) > 4
    # the memory-bound tail flattens (C6 within 1.3x of C5 — see
    # EXPERIMENTS.md for the recorded deviation from strict monotonicity)
    assert fp32[5] <= 1.3 * fp32[4]
