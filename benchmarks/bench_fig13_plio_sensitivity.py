"""Figs. 12-13: PLIO sensitivity and array-utilization trade-off."""

import pytest


def test_fig12_reference_schemes(run_and_render):
    result = run_and_render("fig12")
    assert len(result.rows) == 4
    plios = [r["plios"] for r in result.rows]
    assert plios == [3, 7, 14, 36]


def test_fig13_plio_sensitivity(run_and_render):
    result = run_and_render("fig13")
    fp32 = result.panels["FP32 (C1)"]
    int8 = result.panels["INT8 (C7)"]

    # paper: twelve schemes, 3..36 PLIOs (FP32) and 3..34 (INT8)
    assert len(fp32) == 12 and len(int8) == 12
    assert (fp32[0]["plios"], fp32[-1]["plios"]) == (3, 36)
    assert (int8[0]["plios"], int8[-1]["plios"]) == (3, 34)
    # paper: 4.63x improvement for FP32 (ours: 4.60x)
    assert fp32[-1]["speedup_vs_3plio"] == pytest.approx(4.63, abs=0.25)
    # paper: 6.60x for INT8 (ours overshoots to ~9x; see EXPERIMENTS.md)
    assert 5.5 <= int8[-1]["speedup_vs_3plio"] <= 9.5
    # paper: the 36-PLIO scheme caps the array at 28% utilization while
    # the 7-PLIO scheme reaches 100%
    assert fp32[-1]["array_utilization_pct"] == 28
    assert next(r for r in fp32 if r["plios"] == 7)["array_utilization_pct"] == 100
    # diminishing returns: each added PLIO helps less
    cycles = [r["cycles_per_tile"] for r in fp32]
    assert all(b <= a for a, b in zip(cycles, cycles[1:]))
