"""Fig. 10: weak scaling — each config runs its own native size."""


def test_fig10_weak_scaling(run_and_render):
    result = run_and_render("fig10")
    for panel in ("FP32", "INT8"):
        rows = result.panels[panel]
        times = [r["us"] for r in rows]
        # paper: time rises with configuration size (memory transactions
        # grow while compute stays constant)
        assert all(b >= a for a, b in zip(times, times[1:]))
        io = [r["io_bytes"] for r in rows]
        assert all(b > a for a, b in zip(io, io[1:]))
    # the FP32 spread is larger than the INT8 spread (paper: 100% vs 40%)
    fp32_spread = result.panels["FP32"][-1]["vs_smallest"]
    int8_spread = result.panels["INT8"][-1]["vs_smallest"]
    assert fp32_spread > int8_spread > 1.0
