"""Section V-G: PL double vs single buffering (C6 FP32, C11 INT8)."""

import pytest


def test_buffering_study(run_and_render):
    result = run_and_render("buffering")

    c6 = result.row_by("configuration", "C6")
    # paper: 9.95 -> 14.72 ms = 1.48x when single buffering serialises
    assert c6["double_ms"] == pytest.approx(9.95, rel=0.15)
    assert 1.35 <= c6["same_tiles_ratio"] <= 1.60

    c11 = result.row_by("configuration", "C11")
    # paper: 0.92 ms double buffered; re-tiling recovers most of the
    # single-buffer serialisation (paper measured an outright win; see
    # EXPERIMENTS.md for the recorded deviation)
    assert c11["double_ms"] == pytest.approx(0.92, rel=0.20)
    assert c11["single_retiled_ms"] < c11["single_same_tiles_ms"]
    assert c11["retiled_ratio"] <= 1.15
