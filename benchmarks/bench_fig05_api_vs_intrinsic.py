"""Fig. 5: intrinsic vs API single-AIE kernel performance."""

import pytest


def test_fig5_api_vs_intrinsic(run_and_render):
    result = run_and_render("fig5")

    def eff(precision, style):
        return next(
            r["efficiency"]
            for r in result.rows
            if r["precision"] == precision and r["style"] == style
        )

    # paper: intrinsics exceed ~90% efficiency for both precisions
    assert eff("fp32", "intrinsic") > 0.85
    assert eff("int8", "intrinsic") > 0.85
    # paper: the API loses 46% (FP32) / 7% (INT8)
    assert 1 - eff("fp32", "api") / eff("fp32", "intrinsic") == pytest.approx(0.46, abs=0.04)
    assert 1 - eff("int8", "api") / eff("int8", "intrinsic") == pytest.approx(0.07, abs=0.03)
    # paper: hardware time exceeds aiesimulator time (DRAM + setup)
    assert all(r["hw_us"] > r["aiesim_us"] for r in result.rows)
