"""Evaluation-engine throughput: serial vs. cached vs. parallel vs. vectorized DSE.

Measures evaluations/second over a fixed DSE candidate set in four
modes and appends the result to a ``BENCH_eval.json`` trajectory so the
engine's throughput is tracked across commits:

* ``serial``     — the seed path: every candidate re-derived from
  scratch (``NULL_CACHE``), one thread.
* ``cached``     — the memoization layer enabled, one thread.
* ``parallel``   — memoization plus ``parallel_map`` fan-out.
* ``vectorized`` — the batch evaluation kernel: one NumPy coarse pass
  over the whole candidate grid, then a cached exact re-rank of the
  surviving top-K.

The engine's contract is a declarative gate list judged by
:mod:`repro.bench.regression`: cached+parallel exploration is at least
2x the seed serial path on the same candidate set, the vectorized path
is at least 10x, and the top-10 rankings are byte-identical between
serial, parallel, and vectorized runs.  The floors are recorded into
every trajectory entry, so later runs gate against the committed
values rather than this file's defaults.

Run directly (``python benchmarks/bench_eval_throughput.py``) or let CI
invoke the ``--smoke`` variant; ``test_eval_throughput_smoke`` keeps it
alive under pytest as well.  ``versal-gemm bench eval`` drives the same
measurement through the repeated-run statistical harness
(docs/benchmarking.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.regression import Gate, check_entry, failure_messages
from repro.bench.scenarios import EVAL_WORKLOAD, ranking_bytes
from repro.bench.trajectory import append_trajectory
from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.kernels.precision import Precision
from repro.perf.cache import EvalCache, NullCache
from repro.workloads.gemm import GemmShape

DEFAULT_WORKLOAD = EVAL_WORKLOAD
SPEEDUP_FLOOR = 2.0
VECTORIZED_SPEEDUP_FLOOR = 10.0

#: the engine's contract, declaratively (judged by check_entry)
GATES = (
    Gate(metric="rankings_identical", kind="flag",
         label="serial, parallel, and vectorized top-10 rankings differ"),
    Gate(metric="speedup_cached_parallel", kind="floor", value=SPEEDUP_FLOOR),
    Gate(metric="speedup_vectorized", kind="floor",
         value=VECTORIZED_SPEEDUP_FLOOR),
)


def _explorer(
    max_aies: int, jobs: int, cache: EvalCache, vectorize: bool = False
) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(
        Precision.FP32,
        max_aies=max_aies,
        explore_ports=True,
        jobs=jobs,
        cache=cache,
        vectorize=vectorize,
    )


def _time_mode(
    explorer: DesignSpaceExplorer, workload: GemmShape, repeats: int
) -> tuple[float, DseResult]:
    start = time.perf_counter()
    result = explorer.explore(workload)
    for _ in range(repeats - 1):
        result = explorer.explore(workload)
    return time.perf_counter() - start, result


def run_benchmark(
    workload: GemmShape = DEFAULT_WORKLOAD,
    max_aies: int = 128,
    repeats: int = 3,
    jobs: int = 4,
) -> dict:
    num_candidates = len(_explorer(max_aies, 1, NullCache()).candidates())
    evaluations = num_candidates * repeats

    serial_seconds, serial_result = _time_mode(
        _explorer(max_aies, 1, NullCache()), workload, repeats
    )
    cached_seconds, _ = _time_mode(
        _explorer(max_aies, 1, EvalCache()), workload, repeats
    )
    parallel_seconds, parallel_result = _time_mode(
        _explorer(max_aies, jobs, EvalCache()), workload, repeats
    )
    vectorized_seconds, vectorized_result = _time_mode(
        _explorer(max_aies, jobs, EvalCache(), vectorize=True), workload, repeats
    )

    modes = {
        "serial": serial_seconds,
        "cached": cached_seconds,
        "parallel": parallel_seconds,
        "vectorized": vectorized_seconds,
    }
    return {
        "timestamp": time.time(),
        "workload": str(workload),
        "candidates": num_candidates,
        "repeats": repeats,
        "jobs": jobs,
        "modes": {
            name: {
                "seconds": seconds,
                "evals_per_sec": evaluations / seconds if seconds else 0.0,
            }
            for name, seconds in modes.items()
        },
        "speedup_cached": serial_seconds / cached_seconds,
        "speedup_cached_parallel": serial_seconds / parallel_seconds,
        "speedup_vectorized": serial_seconds / vectorized_seconds,
        "rankings_identical": ranking_bytes(serial_result)
        == ranking_bytes(parallel_result)
        == ranking_bytes(vectorized_result),
        "floors": {
            "speedup_cached_parallel": SPEEDUP_FLOOR,
            "speedup_vectorized": VECTORIZED_SPEEDUP_FLOOR,
        },
    }


def check(entry: dict, baseline: dict | None = None) -> list[str]:
    """The engine's contract; empty list means the run is acceptable.

    A ``baseline`` trajectory entry overrides the declared floors with
    its recorded ``floors`` map, so the gate tracks committed history.
    """
    return failure_messages(check_entry(entry, GATES, baseline))


def test_eval_throughput_smoke():
    """Tier-2 smoke: small candidate set, full contract still holds."""
    entry = run_benchmark(max_aies=64, repeats=3, jobs=2)
    assert check(entry) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="1024x1024x1024", help="MxKxN")
    parser.add_argument("--max-aies", type=int, default=128)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--output", "-o", default="BENCH_eval.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small candidate set for CI (max_aies=64)",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(
        workload=GemmShape.parse(args.workload),
        max_aies=64 if args.smoke else args.max_aies,
        repeats=args.repeats,
        jobs=args.jobs,
    )
    append_trajectory(entry, Path(args.output))

    print(f"workload {entry['workload']}  candidates {entry['candidates']}  "
          f"repeats {entry['repeats']}  jobs {entry['jobs']}")
    for name, mode in entry["modes"].items():
        print(f"{name:>9}: {mode['seconds'] * 1e3:8.1f} ms  "
              f"{mode['evals_per_sec']:8.1f} evals/s")
    print(f"speedup (cached):          {entry['speedup_cached']:.2f}x")
    print(f"speedup (cached+parallel): {entry['speedup_cached_parallel']:.2f}x")
    print(f"speedup (vectorized):      {entry['speedup_vectorized']:.2f}x")
    print(f"rankings identical:        {entry['rankings_identical']}")
    print(f"trajectory -> {args.output}")

    failures = check(entry)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
