"""Evaluation-engine throughput: serial vs. cached vs. parallel vs. vectorized DSE.

Measures evaluations/second over a fixed DSE candidate set in four
modes and appends the result to a ``BENCH_eval.json`` trajectory so the
engine's throughput is tracked across commits:

* ``serial``     — the seed path: every candidate re-derived from
  scratch (``NULL_CACHE``), one thread.
* ``cached``     — the memoization layer enabled, one thread.
* ``parallel``   — memoization plus ``parallel_map`` fan-out.
* ``vectorized`` — the batch evaluation kernel: one NumPy coarse pass
  over the whole candidate grid, then a cached exact re-rank of the
  surviving top-K.

The script asserts the engine's contract: cached+parallel exploration is
at least 2x the seed serial path on the same candidate set, the
vectorized path is at least 10x, and the top-10 rankings are
byte-identical between serial, parallel, and vectorized runs.

Run directly (``python benchmarks/bench_eval_throughput.py``) or let CI
invoke the ``--smoke`` variant; ``test_eval_throughput_smoke`` keeps it
alive under pytest as well.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.kernels.precision import Precision
from repro.perf.cache import EvalCache, NullCache
from repro.workloads.gemm import GemmShape

DEFAULT_WORKLOAD = GemmShape(1024, 1024, 1024)
SPEEDUP_FLOOR = 2.0
VECTORIZED_SPEEDUP_FLOOR = 10.0


def _ranking_bytes(points: DseResult) -> bytes:
    """Serialize a ranking for byte-exact comparison (full float repr)."""
    rows = [
        {
            "config_grouping": repr(point.config.grouping),
            "num_plios": point.config.num_plios,
            "dram_ports": str(point.config.dram_ports),
            "seconds": repr(point.seconds),
        }
        for point in points
    ]
    return json.dumps(rows, sort_keys=True).encode()


def _explorer(
    max_aies: int, jobs: int, cache: EvalCache, vectorize: bool = False
) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(
        Precision.FP32,
        max_aies=max_aies,
        explore_ports=True,
        jobs=jobs,
        cache=cache,
        vectorize=vectorize,
    )


def _time_mode(
    explorer: DesignSpaceExplorer, workload: GemmShape, repeats: int
) -> tuple[float, DseResult]:
    start = time.perf_counter()
    result = explorer.explore(workload)
    for _ in range(repeats - 1):
        result = explorer.explore(workload)
    return time.perf_counter() - start, result


def run_benchmark(
    workload: GemmShape = DEFAULT_WORKLOAD,
    max_aies: int = 128,
    repeats: int = 3,
    jobs: int = 4,
) -> dict:
    num_candidates = len(_explorer(max_aies, 1, NullCache()).candidates())
    evaluations = num_candidates * repeats

    serial_seconds, serial_result = _time_mode(
        _explorer(max_aies, 1, NullCache()), workload, repeats
    )
    cached_seconds, _ = _time_mode(
        _explorer(max_aies, 1, EvalCache()), workload, repeats
    )
    parallel_seconds, parallel_result = _time_mode(
        _explorer(max_aies, jobs, EvalCache()), workload, repeats
    )
    vectorized_seconds, vectorized_result = _time_mode(
        _explorer(max_aies, jobs, EvalCache(), vectorize=True), workload, repeats
    )

    modes = {
        "serial": serial_seconds,
        "cached": cached_seconds,
        "parallel": parallel_seconds,
        "vectorized": vectorized_seconds,
    }
    return {
        "timestamp": time.time(),
        "workload": str(workload),
        "candidates": num_candidates,
        "repeats": repeats,
        "jobs": jobs,
        "modes": {
            name: {
                "seconds": seconds,
                "evals_per_sec": evaluations / seconds if seconds else 0.0,
            }
            for name, seconds in modes.items()
        },
        "speedup_cached": serial_seconds / cached_seconds,
        "speedup_cached_parallel": serial_seconds / parallel_seconds,
        "speedup_vectorized": serial_seconds / vectorized_seconds,
        "rankings_identical": _ranking_bytes(serial_result)
        == _ranking_bytes(parallel_result)
        == _ranking_bytes(vectorized_result),
    }


def append_trajectory(entry: dict, output: Path) -> None:
    """Append one run to the benchmark's JSON trajectory file."""
    trajectory: list[dict] = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"{output} exists but is not valid JSON ({error}); "
                "move it aside to start a fresh trajectory"
            ) from None
        if not isinstance(trajectory, list):
            raise SystemExit(f"{output} is not a JSON list trajectory")
    trajectory.append(entry)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")


def check(entry: dict) -> list[str]:
    """The engine's contract; empty list means the run is acceptable."""
    failures = []
    if not entry["rankings_identical"]:
        failures.append("serial, parallel, and vectorized top-10 rankings differ")
    if entry["speedup_cached_parallel"] < SPEEDUP_FLOOR:
        failures.append(
            f"cached+parallel speedup {entry['speedup_cached_parallel']:.2f}x "
            f"is below the {SPEEDUP_FLOOR}x floor"
        )
    if entry["speedup_vectorized"] < VECTORIZED_SPEEDUP_FLOOR:
        failures.append(
            f"vectorized speedup {entry['speedup_vectorized']:.2f}x "
            f"is below the {VECTORIZED_SPEEDUP_FLOOR}x floor"
        )
    return failures


def test_eval_throughput_smoke():
    """Tier-2 smoke: small candidate set, full contract still holds."""
    entry = run_benchmark(max_aies=64, repeats=3, jobs=2)
    assert check(entry) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="1024x1024x1024", help="MxKxN")
    parser.add_argument("--max-aies", type=int, default=128)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--output", "-o", default="BENCH_eval.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small candidate set for CI (max_aies=64)",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(
        workload=GemmShape.parse(args.workload),
        max_aies=64 if args.smoke else args.max_aies,
        repeats=args.repeats,
        jobs=args.jobs,
    )
    append_trajectory(entry, Path(args.output))

    print(f"workload {entry['workload']}  candidates {entry['candidates']}  "
          f"repeats {entry['repeats']}  jobs {entry['jobs']}")
    for name, mode in entry["modes"].items():
        print(f"{name:>9}: {mode['seconds'] * 1e3:8.1f} ms  "
              f"{mode['evals_per_sec']:8.1f} evals/s")
    print(f"speedup (cached):          {entry['speedup_cached']:.2f}x")
    print(f"speedup (cached+parallel): {entry['speedup_cached_parallel']:.2f}x")
    print(f"speedup (vectorized):      {entry['speedup_vectorized']:.2f}x")
    print(f"rankings identical:        {entry['rankings_identical']}")
    print(f"trajectory -> {args.output}")

    failures = check(entry)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
