"""Fig. 11: execution breakdown for 2048^3 with model-vs-HW comparison."""

import pytest


def test_fig11_breakdown(run_and_render):
    result = run_and_render("fig11")
    # paper: analytical model within +/-5% of hardware
    assert all(abs(r["model_error_pct"]) <= 5.0 for r in result.rows)
    # paper: DRAM-to-PL dominates right of C4 (memory bound)
    for name in ("C5", "C6", "C10", "C11"):
        assert result.row_by("configuration", name)["memory_bound"]
    for name in ("C1", "C2", "C3"):
        assert not result.row_by("configuration", name)["memory_bound"]
    # paper (Section V-G): C6 measures 9.95 ms
    assert result.row_by("configuration", "C6")["hw_ms"] == pytest.approx(9.95, rel=0.15)
    # the exposed PL<->AIE overhead is visible in every breakdown
    assert all(r["exposed_plio_ms"] > 0 for r in result.rows)
