"""Benchmarks regenerating Tables I, II and III."""


def test_table1_platforms(run_and_render):
    result = run_and_render("table1")
    assert [r["platform"] for r in result.rows] == [
        "aiesimulator", "sw_emu", "hw_emu", "hw", "analytical",
    ]


def test_table2_configurations(run_and_render):
    result = run_and_render("table2")
    assert len(result.rows) == 11
    assert result.row_by("configuration", "C6")["native_size"] == "384x128x256"
    assert result.row_by("configuration", "C11")["plios"] == 112


def test_table3_dnn_workloads(run_and_render):
    result = run_and_render("table3")
    assert result.row_by("id", "L1")["M"] == 13824
    assert all(r["aspect"] != "square" for r in result.rows)
