"""Fig. 8: AIE-to-AIE communication scheme comparison."""


def _value(rows, scheme):
    return next(r["normalized_time"] for r in rows if r["scheme"] == scheme)


def test_fig8_comm_schemes(run_and_render):
    result = run_and_render("fig8")
    fp32_small = result.panels["fp32 16 AIEs"]
    int8_small = result.panels["int8 16 AIEs"]
    fp32_large = result.panels["fp32 384 AIEs"]
    int8_large = result.panels["int8 256 AIEs"]

    # paper, 16 AIEs: double buffer +1%, single buffer +32% / +78%
    assert _value(fp32_small, "buffer_double") < 1.03
    assert 1.25 <= _value(fp32_small, "buffer_single") <= 1.37
    assert 1.70 <= _value(int8_small, "buffer_single") <= 1.90
    # paper: via-switch costs up to 6% for FP32, 3.17-3.3x for INT8
    assert _value(fp32_small, "via_switch_far") <= 1.06
    assert 3.1 <= _value(int8_small, "via_switch_near") <= 3.4
    # paper, max AIEs: +22%/+32% (FP32) and +66%/+76% (INT8)
    assert _value(fp32_large, "buffer_double") == 1.22
    assert _value(int8_large, "buffer_single") == 1.76
    # via-switch far cannot be built at maximum AIE counts
    assert _value(fp32_large, "via_switch_far") is None
    # cascade is the baseline winner everywhere
    for rows in result.panels.values():
        feasible = [r["normalized_time"] for r in rows if r["feasible"]]
        assert min(feasible) == 1.0
