"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures via the
experiment registry, asserts its headline claims, and prints the
reproduced rows (run with ``-s`` to see them alongside the timing table).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_and_render(benchmark):
    """Benchmark an experiment driver once and print its rendering.

    Experiment drivers are deterministic and some are heavy (full
    config sweeps through the DES), so each is measured with a single
    round rather than pytest-benchmark's auto-calibration.
    """

    def runner(experiment_id: str):
        from repro.experiments import run_experiment

        result = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1
        )
        print()
        print(result.render())
        return result

    return runner
