"""Section IV-C: achieved DRAM bandwidth vs design port count."""

import pytest


def test_dram_ports(run_and_render):
    result = run_and_render("dram_ports")
    # paper: 2r1w -> 20 GB/s, 4r2w -> 34 GB/s, plateau thereafter
    assert result.row_by("ports", "2r1w")["achieved_gb_s"] == pytest.approx(20.0, abs=0.2)
    assert result.row_by("ports", "4r2w")["achieved_gb_s"] == pytest.approx(34.0, abs=0.2)
    assert result.row_by("ports", "8r4w")["achieved_gb_s"] == pytest.approx(34.0, abs=0.2)
    # paper: only 34% of the theoretical 102.4 GB/s is reachable
    assert result.row_by("ports", "4r2w")["utilization_pct"] == pytest.approx(34, abs=1)
