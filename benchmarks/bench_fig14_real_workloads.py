"""Fig. 14: Table III workloads under kernel/DRAM/AIE variations."""


def test_fig14_real_workloads(run_and_render):
    result = run_and_render("fig14")
    assert len(result.rows) == 4 * 6

    # paper: L3/L4 are constrained by the C store (big M,N / small K)
    for row in result.rows:
        if row["workload"] in ("L3", "L4"):
            assert row["bottleneck"] == "store_c"

    # paper: B1/V1/L1/L2 are DRAM-input-load bound at 20 GB/s
    low_bw = [
        r for r in result.rows
        if "(2r1w)" in r["variant"] and r["workload"] in ("B1", "V1", "L1", "L2")
    ]
    assert low_bw and all(r["input_load_bound"] for r in low_bw)

    # paper: raising bandwidth 20 -> 34 GB/s reduces every latency
    for workload in ("B1", "V1", "L1", "L2", "L3", "L4"):
        slow = next(r["ms"] for r in result.rows
                    if r["workload"] == workload and "20GB/s" in r["variant"])
        fast = next(r["ms"] for r in result.rows
                    if r["workload"] == workload
                    and r["variant"] == "C6 32^3 34GB/s (4r2w)")
        assert fast < slow
