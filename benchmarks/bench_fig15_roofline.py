"""Fig. 15: INT8 roofline with the Table III workloads."""

import pytest


def test_fig15_roofline(run_and_render):
    result = run_and_render("fig15")

    # paper: red dots — B1/V1/L1/L2 compute-bound, L3/L4 DRAM-bound
    for workload_id in ("B1", "V1", "L1", "L2"):
        assert result.row_by("workload", workload_id)["ideal_bound"] == "compute"
    for workload_id in ("L3", "L4"):
        assert result.row_by("workload", workload_id)["ideal_bound"] == "dram"

    # paper: green circles — tiling overhead makes all of them DRAM
    # bound, so the 128 TOPS ceiling is unattainable
    assert all(r["tiled_bound"] == "dram" for r in result.rows)
    assert all(r["tiled_attainable_tops"] < 128 for r in result.rows)
    assert all(r["tiled_oi"] < r["ideal_oi"] for r in result.rows)

    # ceilings: one per INT8 config, topping out at 128 TOPs
    ceilings = result.panels["ceilings"]
    assert ceilings[-1]["peak_tops"] == pytest.approx(128.0)
    lines = {r["line"]: r["gb_per_s"] for r in result.panels["bandwidth_lines"]}
    assert lines["PLIO (PL->AIE)"] > 10 * lines["DRAM (theoretical)"]
