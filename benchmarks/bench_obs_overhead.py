"""Observability overhead: the disabled tracer must be free.

The obs subsystem instruments the serving hot path (``serve.run``
spans, per-chunk dispatch spans, the fault loop) behind a
disabled-by-default tracer whose fast path is one attribute check.
This benchmark holds that contract to numbers and appends each run to
a ``BENCH_obs.json`` trajectory:

* ``untraced`` — the serving engine with the ``span`` entry point
  monkeypatched to a pure no-op, i.e. the pre-obs code path;
* ``disabled`` — the shipped code with tracing off (the default);
* ``overhead`` — the relative throughput delta between them, gated at
  ``OVERHEAD_LIMIT`` (3%) on the full run;
* ``monitor`` — the default (exact) serving run with a windowed
  :class:`ServingMonitor` attached (100 windows), gated at
  ``MONITOR_OVERHEAD_LIMIT`` (5%) against the monitor-off run, with
  dispatch decisions required to be byte-identical and a
  benchmark-run SLO verdict gated through the ``slo``
  regression-gate kind;
* ``noop_span_ns`` — the cost of one disabled ``span(...)`` call,
  gated at ``NOOP_NS_CEILING``.

It also asserts the export contract end to end: dispatch decisions are
byte-identical with the tracer enabled vs. disabled, the exported
Chrome trace passes schema validation (monotone ``ts``, matched
``b``/``e`` pairs, one track per accelerator), and the per-request
wait + execute spans sum to the exact report's latency accounting
within float tolerance.

Run directly (``python benchmarks/bench_obs_overhead.py``) or let CI
invoke the full 100k-request run; ``--trace-out`` additionally writes
the enabled-run trace for upload as a workflow artifact.
``test_obs_overhead_smoke`` keeps the contract alive under pytest with
a reduced trace and a noise-lenient gate.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from repro.bench.regression import Gate, check_entry, failure_messages
from repro.bench.scenarios import (
    MEAN_INTERARRIVAL,
    OBS_SHAPES as SHAPES,
    SERVING_CONFIGS as CONFIGS,
    build_partition,
)
from repro.bench.trajectory import append_trajectory
from repro.obs.export import ChromeTraceBuilder, validate_chrome_trace, write_chrome_trace
from repro.obs.slo import evaluate_slo
from repro.obs.spans import _NULL_SPAN, GLOBAL_TRACER, span
from repro.obs.windows import ServingMonitor
from repro.sim.serving import ServingSimulator
from repro.sim.streaming import generate_trace_soa

DEFAULT_REQUESTS = 100_000
VERIFY_REQUESTS = 5_000
#: telemetry windows the monitor leg cuts the horizon into
MONITOR_WINDOWS = 100
#: SLO evaluated over the monitor leg (fault-free run: must hold)
BENCH_SLO = "avail>0.999,shed<0.01"
#: relative throughput delta allowed for the shipped-but-disabled tracer
OVERHEAD_LIMIT = 0.03
#: relative delta allowed with a windowed monitor attached (vs. off)
MONITOR_OVERHEAD_LIMIT = 0.05
#: pytest smoke runs are short, so scheduler noise dominates — lenient
SMOKE_OVERHEAD_LIMIT = 0.15
SMOKE_MONITOR_OVERHEAD_LIMIT = 0.25
#: one disabled span() call (attribute check + return of the null span)
NOOP_NS_CEILING = 2_000.0
#: exported spans must reproduce the report's latency sums to this
ACCOUNTING_RTOL = 1e-6


def _null_span(*_args, **_kwargs):
    return _NULL_SPAN


def _time_serving(simulator, soa, repeats: int) -> float:
    """Best-of-N wall time for one streaming serving run."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        simulator.run(soa, streaming=True)
        best = min(best, time.perf_counter() - started)
    return best


def measure_overhead(num_requests: int, repeats: int = 3) -> dict:
    """Shipped-disabled vs. pure-no-op serving throughput."""
    import repro.sim.serving as serving_mod

    simulator = ServingSimulator(build_partition(CONFIGS))
    simulator.prewarm(SHAPES)
    soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)

    assert not GLOBAL_TRACER.enabled, "benchmark requires the tracer disabled"
    # interleave-resistant ordering: untraced first (it is the baseline
    # the shipped path is compared against), then the shipped path
    original_span = serving_mod.span
    serving_mod.span = _null_span
    try:
        untraced_seconds = _time_serving(simulator, soa, repeats)
    finally:
        serving_mod.span = original_span
    disabled_seconds = _time_serving(simulator, soa, repeats)

    # monitor leg: the default (exact) serving mode — what `serve`
    # runs without --streaming — monitor-off vs. monitor-on, with a
    # fresh monitor per repeat so no repeat folds into another's series
    window_seconds = num_requests * MEAN_INTERARRIVAL / MONITOR_WINDOWS
    monitor_off_best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        simulator.run(soa)
        monitor_off_best = min(monitor_off_best, time.perf_counter() - started)
    monitor_best = math.inf
    monitor = None
    for _ in range(repeats):
        candidate = ServingMonitor(window_seconds)
        started = time.perf_counter()
        simulator.run(soa, monitor=candidate)
        elapsed = time.perf_counter() - started
        if elapsed < monitor_best:
            monitor_best = elapsed
        monitor = candidate

    return {
        "untraced_seconds": untraced_seconds,
        "disabled_seconds": disabled_seconds,
        "monitor_off_seconds": monitor_off_best,
        "monitor_seconds": monitor_best,
        "untraced_rps": num_requests / untraced_seconds,
        "disabled_rps": num_requests / disabled_seconds,
        "monitor_rps": num_requests / monitor_best,
        "overhead": (disabled_seconds - untraced_seconds) / untraced_seconds,
        "monitor_overhead": (
            (monitor_best - monitor_off_best) / monitor_off_best
        ),
        "_monitor": monitor,
    }


def measure_noop_span(calls: int = 200_000) -> float:
    """Nanoseconds for one disabled module-level span() call."""
    assert not GLOBAL_TRACER.enabled
    best = math.inf
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            span("bench.noop")
        best = min(best, time.perf_counter() - started)
    return best / calls * 1e9


def _dispatch_bytes(report) -> bytes:
    # stricter than scenarios.dispatch_bytes: request identity included,
    # so a reordering that preserves (accelerator, times) still fails
    rows = [
        (c.request.request_id, c.accelerator, repr(c.start), repr(c.finish))
        for c in report.completed
    ]
    return json.dumps(rows).encode()


def verify_trace_contract(num_requests: int) -> dict:
    """Enabled-run export invariants: identity, schema, accounting."""
    simulator = ServingSimulator(build_partition(CONFIGS))
    simulator.prewarm(SHAPES)
    soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=11)

    baseline = simulator.run(soa)
    GLOBAL_TRACER.enable(clear=True)
    try:
        traced = simulator.run(soa)
        spans = GLOBAL_TRACER.spans()
    finally:
        GLOBAL_TRACER.disable()
    dispatch_identical = _dispatch_bytes(baseline) == _dispatch_bytes(traced)

    monitor = ServingMonitor(num_requests * MEAN_INTERARRIVAL / MONITOR_WINDOWS)
    monitored = simulator.run(soa, monitor=monitor)
    monitor_dispatch_identical = (
        _dispatch_bytes(baseline) == _dispatch_bytes(monitored)
    )

    builder = ChromeTraceBuilder()
    builder.add_spans(spans)
    builder.add_serving_report(traced)
    trace = builder.build()
    try:
        validate_chrome_trace(trace)
        trace_valid = True
    except ValueError:
        trace_valid = False

    # accounting: per-request wait (b/e pair) + execute (X) durations
    # must reproduce the report's total latency
    wait_start: dict[str, float] = {}
    wait_us = 0.0
    exec_us = 0.0
    accelerator_tracks: set[str] = set()
    for event in trace["traceEvents"]:
        if event.get("cat") == "wait":
            if event["ph"] == "b":
                wait_start[event["id"]] = event["ts"]
            elif event["ph"] == "e":
                wait_us += event["ts"] - wait_start[event["id"]]
        elif event.get("cat") == "execute":
            exec_us += event["dur"]
        elif event["ph"] == "M" and event["name"] == "thread_name":
            accelerator_tracks.add(event["args"]["name"])
    span_latency = (wait_us + exec_us) / 1e6
    report_latency = sum(c.latency for c in traced.completed)
    accounting_error = (
        abs(span_latency - report_latency) / report_latency
        if report_latency
        else 0.0
    )
    per_accelerator_tracks = {
        c.accelerator for c in traced.completed
    } <= accelerator_tracks
    return {
        "dispatch_identical": dispatch_identical,
        "monitor_dispatch_identical": monitor_dispatch_identical,
        "trace_valid": trace_valid,
        "accounting_error": accounting_error,
        "per_accelerator_tracks": per_accelerator_tracks,
        "trace": trace,
    }


def run_benchmark(
    num_requests: int = DEFAULT_REQUESTS, smoke: bool = False, repeats: int = 3
) -> dict:
    entry = {
        "timestamp": time.time(),
        "requests": num_requests,
        "shapes": [str(shape) for shape in SHAPES],
        "configs": list(CONFIGS),
        "smoke": smoke,
        "overhead_limit": SMOKE_OVERHEAD_LIMIT if smoke else OVERHEAD_LIMIT,
        "monitor_overhead_limit": (
            SMOKE_MONITOR_OVERHEAD_LIMIT if smoke else MONITOR_OVERHEAD_LIMIT
        ),
        "noop_ns_ceiling": NOOP_NS_CEILING,
        "accounting_rtol": ACCOUNTING_RTOL,
    }
    measured = measure_overhead(num_requests, repeats=repeats)
    monitor = measured.pop("_monitor")
    entry.update(measured)
    slo_report = evaluate_slo(monitor, BENCH_SLO)
    entry["slo"] = {
        "spec": BENCH_SLO,
        "ok": slo_report.ok,
        "windows": len(monitor.window_indices()),
        "alerts": [alert.as_dict() for alert in slo_report.alerts],
    }
    entry["noop_span_ns"] = measure_noop_span()
    contract = verify_trace_contract(min(num_requests, VERIFY_REQUESTS))
    entry["_trace"] = contract.pop("trace")
    entry.update(contract)
    return entry


#: declarative gates judged through the shared regression-gate engine
_ENTRY_GATES = (
    Gate(metric="monitor_dispatch_identical", kind="flag",
         label="dispatch decisions differ with a monitor attached"),
    Gate(metric="slo", kind="slo",
         label=f"benchmark-run SLO '{BENCH_SLO}' breached"),
)


def check(entry: dict) -> list[str]:
    """The obs overhead contract; empty list means acceptable."""
    failures = failure_messages(check_entry(entry, _ENTRY_GATES))
    if entry["overhead"] > entry["overhead_limit"]:
        failures.append(
            f"disabled-tracer overhead {entry['overhead']:.2%} exceeds the "
            f"{entry['overhead_limit']:.0%} limit"
        )
    if entry["monitor_overhead"] > entry["monitor_overhead_limit"]:
        failures.append(
            f"windowed-monitor overhead {entry['monitor_overhead']:.2%} "
            f"exceeds the {entry['monitor_overhead_limit']:.0%} limit"
        )
    if entry["noop_span_ns"] > entry["noop_ns_ceiling"]:
        failures.append(
            f"disabled span() costs {entry['noop_span_ns']:.0f} ns "
            f"(ceiling {entry['noop_ns_ceiling']:.0f} ns)"
        )
    if not entry["dispatch_identical"]:
        failures.append("dispatch decisions differ with tracing enabled")
    if not entry["trace_valid"]:
        failures.append("exported Chrome trace fails schema validation")
    if not entry["per_accelerator_tracks"]:
        failures.append("exported trace is missing per-accelerator tracks")
    if entry["accounting_error"] > entry["accounting_rtol"]:
        failures.append(
            f"trace latency accounting off by {entry['accounting_error']:.2e} "
            f"(> {entry['accounting_rtol']:.0e} relative)"
        )
    return failures


def append_trajectory(entry: dict, output: Path) -> None:
    """Append one run to the benchmark's JSON trajectory file."""
    trajectory: list[dict] = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"{output} exists but is not valid JSON ({error}); "
                "move it aside to start a fresh trajectory"
            ) from None
        if not isinstance(trajectory, list):
            raise SystemExit(f"{output} is not a JSON list trajectory")
    trajectory.append(entry)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_obs_overhead_smoke():
    """Tier-2 smoke: reduced trace, noise-lenient overhead gate."""
    entry = run_benchmark(num_requests=20_000, smoke=True, repeats=3)
    assert check(entry) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--output", "-o", default="BENCH_obs.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced trace for CI with a noise-lenient overhead gate",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the enabled-run Chrome trace (CI artifact)",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(
        num_requests=20_000 if args.smoke else args.requests, smoke=args.smoke
    )
    trace = entry.pop("_trace")
    if args.trace_out:
        write_chrome_trace(args.trace_out, trace)
        print(f"trace -> {args.trace_out} ({len(trace['traceEvents'])} events)")
    append_trajectory(entry, Path(args.output))

    print(f"requests {entry['requests']}  partition {'+'.join(entry['configs'])}")
    print(f"untraced: {entry['untraced_seconds']:8.3f} s  "
          f"{entry['untraced_rps']:12.1f} req/s")
    print(f"disabled: {entry['disabled_seconds']:8.3f} s  "
          f"{entry['disabled_rps']:12.1f} req/s")
    print(f"mon. off: {entry['monitor_off_seconds']:8.3f} s  (exact mode)")
    print(f"mon. on:  {entry['monitor_seconds']:8.3f} s  "
          f"{entry['monitor_rps']:12.1f} req/s")
    print(f"overhead:             {entry['overhead']:+.2%} "
          f"(limit {entry['overhead_limit']:.0%})")
    print(f"monitor overhead:     {entry['monitor_overhead']:+.2%} "
          f"(limit {entry['monitor_overhead_limit']:.0%})")
    print(f"slo {entry['slo']['spec']!r}: "
          f"{'ok' if entry['slo']['ok'] else 'BREACH'} "
          f"over {entry['slo']['windows']} windows")
    print(f"noop span:            {entry['noop_span_ns']:.0f} ns "
          f"(ceiling {entry['noop_ns_ceiling']:.0f} ns)")
    print(f"dispatch identical:   {entry['dispatch_identical']} "
          f"(with monitor: {entry['monitor_dispatch_identical']})")
    print(f"trace valid:          {entry['trace_valid']}")
    print(f"accel tracks present: {entry['per_accelerator_tracks']}")
    print(f"accounting error:     {entry['accounting_error']:.2e} "
          f"(tolerance {entry['accounting_rtol']:.0e})")
    print(f"trajectory -> {args.output}")

    failures = check(entry)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
