"""Serving-path throughput: the seed dispatch loop vs the fast engine.

Measures end-to-end requests/second for simulating a large serving
trace (trace generation + dispatch + P50/P99 extraction) in two modes
and appends the result to a ``BENCH_serving.json`` trajectory:

* ``seed`` — a frozen copy of the original serving path: scalar
  ``math.log`` trace generation, the O(requests x accelerators) Python
  scan materializing one ``CompletedRequest`` per request, and
  percentiles from a full sort.
* ``fast`` — the previous engine generation: vectorized
  structure-of-arrays trace generation, table dispatch, and the
  streaming report (O(1) memory, sketched percentiles).
* ``vectorized`` — the event-batch engine: the same SoA trace driven
  through the fault-free vectorized dispatch path (native exact loop
  with a NumPy speculate-and-verify fallback).
* ``sharded`` — cluster-scale serving: the trace partitioned across a
  process pool of shard replicas (``ShardedServingCluster``), each
  running the vectorized engine, merged into one fleet report.
* ``wide`` — a wide fleet: eight CHARM designs modelled as one board
  each (a single VCK5000 cannot host eight distinct configs — their
  AIE demand exceeds the 400-tile array), dispatched with the k-wide
  vectorized engine versus the heap engine on the same trace.

The script also times the analytical-model prewarm cold (empty
``EvalCache``) versus warm (restored from an on-disk snapshot via
``save_disk``/``load_disk``) and records the ratio as the ``cache``
entry.

The script asserts the serving engine's contract on every run:

* fast-mode throughput is at least ``SPEEDUP_FLOOR`` (10x) over the
  seed loop on the full trace (a reduced floor applies to ``--smoke``
  runs on small CI traces, where constant overheads dominate);
* vectorized-mode throughput is at least ``VECTORIZED_FLOOR`` (3x)
  over fast mode on the full trace (reduced on ``--smoke``);
* exact-mode dispatch decisions (accelerator, start, finish) are
  **byte-identical** between the scan, table, heap, and vectorized
  engines on a verification subset — fault-free and under a fault
  schedule;
* on the eight-accelerator fleet the vectorized engine is byte-
  identical to heap on a verification subset and, when the native
  k-wide kernel compiled, at least ``WIDE_FLOOR`` (3x) faster than
  heap on the full trace (reduced on ``--smoke``; the speedup gate
  disarms on the NumPy fallback, where vectorized only ties heap at
  this width — the identity checks never disarm);
* SoA trace generation is bit-identical to the scalar generator;
* every shard of a sharded serve is byte-identical to an unsharded
  in-process run over the same sub-trace (for shard counts 2, 4, 8),
  merged percentiles stay within the sketch bound of the exact union
  of the shard streams, and the pooled fleet report equals the inline
  reference; on hosts with >= ``SHARDED_MIN_CPUS`` cores the sharded
  serve must beat single-process vectorized by ``SHARDED_FLOOR``
  (the speedup gate disarms on smaller machines — the determinism
  checks never do);
* streaming P50/P99 are within twice the sketch's documented relative
  error bound of the exact percentiles;
* the warm prewarm serves every estimate from the snapshot (hits > 0)
  and, on full runs, is at least ``PREWARM_SPEEDUP_FLOOR`` (10x)
  faster than the cold prewarm.

Run directly (``python benchmarks/bench_serving.py``) or let CI invoke
the ``--smoke`` variant; ``test_serving_throughput_smoke`` keeps it
alive under pytest as well.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.regression import Gate, check_entry, failure_messages
from repro.bench.scenarios import (
    MEAN_INTERARRIVAL,
    QUANTILE_ERROR,
    SERVING_CONFIGS as CONFIGS,
    SERVING_SHAPES as SHAPES,
    dispatch_bytes as _dispatch_bytes,
)
from repro.bench.trajectory import append_trajectory
from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.sim.serving import ServingSimulator, generate_trace
from repro.sim.streaming import generate_trace_soa
from repro.workloads.gemm import GemmShape

DEFAULT_REQUESTS = 1_000_000
VERIFY_REQUESTS = 20_000
SPEEDUP_FLOOR = 10.0
SMOKE_SPEEDUP_FLOOR = 3.0
VECTORIZED_FLOOR = 3.0
SMOKE_VECTORIZED_FLOOR = 2.0
PREWARM_SPEEDUP_FLOOR = 10.0
SHARDED_FLOOR = 3.0
SHARDED_SHARD_COUNTS = (2, 4, 8)
#: the speedup gate only arms on machines with enough cores to host the
#: shard pool; identity and percentile checks run everywhere
SHARDED_MIN_CPUS = 4

#: the wide fleet: eight distinct CHARM configs, one (virtual) board
#: each — together they need far more than the VCK5000's 400 AIEs, so
#: this is a multi-board fleet, not a single-device partition
WIDE_CONFIGS = ("C1", "C2", "C3", "C4", "C7", "C8", "C9", "C10")
WIDE_FLOOR = 3.0
SMOKE_WIDE_FLOOR = 2.0


# -- frozen seed path (the pre-optimization serving loop) ---------------
# A verbatim copy of the original `repro.sim.serving` request flow —
# dataclass-per-request trace, O(requests x accelerators) scan through a
# memoized `_service` method, and a report whose `latency_percentile`
# re-sorts on every call — so the baseline cannot silently inherit
# later speedups.

from dataclasses import dataclass  # noqa: E402  (seed-path verbatim copy)


def _seed_lcg_uniform(seed: int, index: int) -> float:
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return ((x & 0xFFFFFFFF) + 1) / (2**32 + 2)


@dataclass(frozen=True)
class SeedRequest:
    request_id: int
    shape: GemmShape
    arrival: float


@dataclass(frozen=True)
class SeedCompletedRequest:
    request: SeedRequest
    accelerator: str
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival


class SeedReport:
    def __init__(self, completed):
        self.completed = completed

    def latency_percentile(self, percentile: float) -> float:
        latencies = sorted(c.latency for c in self.completed)
        index = min(
            len(latencies) - 1, math.ceil(percentile / 100 * len(latencies)) - 1
        )
        return latencies[index]


def _seed_generate_trace(shapes, num_requests, mean_interarrival, seed=0):
    requests = []
    clock = 0.0
    for index in range(num_requests):
        clock += -mean_interarrival * math.log(_seed_lcg_uniform(seed, 2 * index))
        shape = shapes[int(_seed_lcg_uniform(seed, 2 * index + 1) * len(shapes))]
        requests.append(SeedRequest(request_id=index, shape=shape, arrival=clock))
    return requests


class SeedSimulator:
    def __init__(self, partition):
        self.partition = partition
        self._service_cache = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _service(self, accelerator, shape):
        key = (accelerator, shape)
        if key not in self._service_cache:
            self.cache_misses += 1
            self._service_cache[key] = self.partition.estimate_on(accelerator, shape)
        else:
            self.cache_hits += 1
        return self._service_cache[key]

    def run(self, trace):
        free_at = {name: 0.0 for name in self.partition.designs}
        completed = []
        for request in sorted(trace, key=lambda r: r.arrival):
            best_name, best_finish, best_start = None, float("inf"), 0.0
            for name in free_at:
                try:
                    service = self._service(name, request.shape)
                except ValueError:
                    continue
                start = max(request.arrival, free_at[name])
                finish = start + service
                if finish < best_finish:
                    best_name, best_finish, best_start = name, finish, start
            free_at[best_name] = best_finish
            completed.append(
                SeedCompletedRequest(
                    request=request,
                    accelerator=best_name,
                    start=best_start,
                    finish=best_finish,
                )
            )
        return SeedReport(completed)


# -- measurement --------------------------------------------------------

def verify_contract(partition: AcceleratorPartition, num_requests: int) -> dict:
    """Byte-identity and accuracy checks on a verification subset."""
    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)
    scalar = generate_trace(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
    soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
    trace_identical = bool(
        np.array_equal(soa.arrivals, np.array([r.arrival for r in scalar]))
        and all(
            soa.shapes[soa.shape_ids[i]] == scalar[i].shape
            for i in range(num_requests)
        )
    )
    scan = simulator.run(scalar, dispatch="scan")
    table = simulator.run(soa, dispatch="table")
    heap = simulator.run(soa, dispatch="heap")
    vectorized = simulator.run(soa, dispatch="vectorized")
    dispatch_identical = (
        _dispatch_bytes(scan)
        == _dispatch_bytes(table)
        == _dispatch_bytes(heap)
        == _dispatch_bytes(vectorized)
    )
    exact_p50, exact_p99 = scan.latency_percentiles([50, 99])
    streaming = simulator.run(
        soa, streaming=True, quantile_error=QUANTILE_ERROR, dispatch="table"
    )
    stream_vec = simulator.run(
        soa, streaming=True, quantile_error=QUANTILE_ERROR, dispatch="vectorized"
    )
    stream_p50, stream_p99 = streaming.latency_percentiles([50, 99])
    return {
        "trace_identical": trace_identical,
        "dispatch_identical": dispatch_identical,
        "streaming_identical": streaming.as_dict() == stream_vec.as_dict(),
        "p50_relative_error": abs(stream_p50 - exact_p50) / exact_p50,
        "p99_relative_error": abs(stream_p99 - exact_p99) / exact_p99,
    }


def verify_fault_contract(partition: AcceleratorPartition, num_requests: int) -> dict:
    """Fault-run invariants: engine identity, determinism, accounting.

    On the same seeded trace and fault schedule the scan, table, heap,
    and vectorized engines must make byte-identical decisions
    (including retries and shed lists), two identical runs must agree
    byte for byte, every request must be exactly one of completed/shed,
    and the streaming report's summary must match across engines.
    """
    from repro.sim.chaos import FaultPolicy, FaultSchedule

    scalar = generate_trace(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
    soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
    horizon = num_requests * MEAN_INTERARRIVAL
    faults = (
        FaultSchedule.down("C5", 0.1 * horizon, 0.25 * horizon)
        + FaultSchedule.degraded("C3", 0.2 * horizon, 0.5 * horizon, factor=2.5)
        + FaultSchedule.down("C3", 0.6 * horizon, 0.7 * horizon)
    )
    policy = FaultPolicy(max_retries=2)

    def fault_bytes(report) -> bytes:
        rows = [
            (c.request.request_id, c.accelerator, repr(c.start), repr(c.finish),
             c.retries)
            for c in report.completed
        ]
        shed = [
            (s.request.request_id, s.retries, s.reason, repr(s.time))
            for s in report.shed
        ]
        return json.dumps([rows, shed]).encode()

    reports = {}
    for engine, trace in (
        ("scan", scalar),
        ("table", soa),
        ("heap", soa),
        ("vectorized", soa),
    ):
        simulator = ServingSimulator(partition)
        reports[engine] = simulator.run(
            trace, dispatch=engine, faults=faults, fault_policy=policy
        )
    blobs = {engine: fault_bytes(report) for engine, report in reports.items()}
    engines_identical = (
        blobs["scan"] == blobs["table"] == blobs["heap"] == blobs["vectorized"]
    )

    rerun = ServingSimulator(partition).run(
        soa, dispatch="table", faults=faults, fault_policy=policy
    )
    deterministic = fault_bytes(rerun) == blobs["table"]

    base = reports["table"]
    accounting_exact = (
        len(base.completed) + base.shed_count == num_requests
        and base.total_retries == base.kills
    )

    stream_table = ServingSimulator(partition).run(
        soa, dispatch="table", streaming=True, faults=faults, fault_policy=policy
    )
    stream_heap = ServingSimulator(partition).run(
        soa, dispatch="heap", streaming=True, faults=faults, fault_policy=policy
    )
    stream_vec = ServingSimulator(partition).run(
        soa, dispatch="vectorized", streaming=True, faults=faults,
        fault_policy=policy,
    )
    streaming_identical = (
        stream_table.as_dict() == stream_heap.as_dict() == stream_vec.as_dict()
    )
    streaming_consistent = (
        stream_table.count == len(base.completed)
        and stream_table.fault_summary() == base.fault_summary()
    )
    return {
        "fault_engines_identical": engines_identical,
        "fault_deterministic": deterministic,
        "fault_accounting_exact": accounting_exact,
        "fault_streaming_identical": bool(streaming_identical),
        "fault_streaming_consistent": bool(streaming_consistent),
    }


def verify_sharded_contract(partition: AcceleratorPartition, num_requests: int) -> dict:
    """Sharded-serving invariants across shard counts 2, 4, 8.

    For each shard count the inline (no-pool) cluster serves the trace;
    every per-shard report must be byte-identical to an unsharded
    in-process run over the same sub-trace, the merged counts must be
    exact, and the merged sketch percentiles must sit within the
    documented relative-error bound of the exact ranked values of the
    union of the per-shard latency streams.
    """
    from repro.sim.cluster_serving import serve_sharded
    from repro.sim.streaming import generate_trace_shard, shard_arrival_offsets

    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)
    identical = True
    counts_exact = True
    percentile_errors: dict[str, float] = {}
    for shards in SHARDED_SHARD_COUNTS:
        fleet = serve_sharded(
            simulator, SHAPES, num_requests, MEAN_INTERARRIVAL,
            shards=shards, seed=7, start_method="inline",
            quantile_error=QUANTILE_ERROR, keep_shard_reports=True,
        )
        counts_exact &= fleet.report.count == num_requests
        offsets = shard_arrival_offsets(
            num_requests, MEAN_INTERARRIVAL, 7, fleet.bounds
        )
        latencies: list[float] = []
        for index, (lo, hi) in enumerate(fleet.bounds):
            sub = generate_trace_shard(
                SHAPES, num_requests, MEAN_INTERARRIVAL, 7,
                lo=lo, hi=hi, arrival_offset=offsets[index],
            )
            reference = simulator.run(
                sub, streaming=True, quantile_error=QUANTILE_ERROR
            )
            identical &= (
                reference.as_dict() == fleet.shard_reports[index].as_dict()
            )
            exact = simulator.run(sub)
            latencies.extend(c.latency for c in exact.completed)
        ordered = sorted(latencies)
        worst = 0.0
        for percentile in (50.0, 99.0):
            rank = min(len(ordered), math.ceil(percentile / 100 * len(ordered)))
            exact_value = ordered[rank - 1]
            estimate = fleet.report.latency_percentile(percentile)
            worst = max(worst, abs(estimate - exact_value) / exact_value)
        percentile_errors[str(shards)] = worst
    return {
        "sharded_identical": bool(identical),
        "sharded_counts_exact": bool(counts_exact),
        "sharded_percentile_errors": percentile_errors,
    }


def run_sharded_benchmark(
    partition: AcceleratorPartition,
    num_requests: int,
    start_method: str | None = None,
    repeats: int = 2,
    shards: int | None = None,
) -> dict:
    """Time a warm sharded cluster against single-process vectorized.

    The pool and the shard plan are built outside the timed region
    (``ShardedServingCluster.warm``) and one untimed serve absorbs
    first-touch costs, so the measurement isolates steady-state fleet
    throughput — the regime the 100M-request experiments run in.  The
    merged fleet report is also checked equal to an inline reference
    serve, which pins the pooled path (fork or spawn) to the already-
    verified no-pool semantics.
    """
    from repro.sim.cluster_serving import ShardedServingCluster

    cpu_count = os.cpu_count() or 1
    shards = shards or min(max(cpu_count, 2), 8)
    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)

    baseline_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
        simulator.run(
            soa, streaming=True, quantile_error=QUANTILE_ERROR,
            dispatch="vectorized",
        )
        baseline_seconds = min(baseline_seconds, time.perf_counter() - started)

    sharded_seconds = math.inf
    with ShardedServingCluster(
        simulator, SHAPES, shards=shards, dispatch="vectorized",
        quantile_error=QUANTILE_ERROR, start_method=start_method,
    ) as cluster:
        method = cluster.start_method
        cluster.warm(num_requests, MEAN_INTERARRIVAL, seed=7)
        cluster.serve(num_requests, MEAN_INTERARRIVAL, seed=7)  # untimed warm-up
        fleet = None
        for _ in range(repeats):
            started = time.perf_counter()
            fleet = cluster.serve(num_requests, MEAN_INTERARRIVAL, seed=7)
            sharded_seconds = min(sharded_seconds, time.perf_counter() - started)
    with ShardedServingCluster(
        simulator, SHAPES, shards=shards, dispatch="vectorized",
        quantile_error=QUANTILE_ERROR, start_method="inline",
    ) as reference_cluster:
        inline_fleet = reference_cluster.serve(
            num_requests, MEAN_INTERARRIVAL, seed=7
        )

    gated = cpu_count >= SHARDED_MIN_CPUS and method != "inline"
    return {
        "shards": fleet.shards,
        "start_method": method,
        "cpu_count": cpu_count,
        "gated": gated,
        "seconds": sharded_seconds,
        "requests_per_sec": num_requests / sharded_seconds,
        "vectorized_seconds": baseline_seconds,
        "speedup_vs_vectorized": baseline_seconds / sharded_seconds,
        "matches_inline": fleet.report.as_dict() == inline_fleet.report.as_dict(),
        "fleet": fleet.as_dict(),
    }


class FleetPartition:
    """A multi-board fleet: one CHARM design per board.

    Duck-types the slice of :class:`AcceleratorPartition` the serving
    simulator uses (``designs`` and ``estimate_on``) but skips the
    single-device AIE/PLIO budget validation — each accelerator lives
    on its own VCK5000, so the budgets never compose.  This is the
    smallest honest model of a wide fleet: eight *distinct* configs
    cannot coexist on one device (C1–C4 + C7–C10 alone need more AIEs
    than the 400-tile array provides).
    """

    def __init__(self, configs):
        from repro.core.analytical_model import AnalyticalModel
        from repro.mapping.charm import CharmDesign

        self.designs = {c.name: CharmDesign(c) for c in configs}
        self._models = {
            name: AnalyticalModel(design)
            for name, design in self.designs.items()
        }

    def estimate_on(self, accelerator: str, shape) -> float:
        return self._models[accelerator].estimate(shape).total_seconds


def run_wide_benchmark(num_requests: int, repeats: int = 2) -> dict:
    """Vectorized vs heap on the eight-accelerator fleet.

    Before timing, a verification subset is dispatched through both
    engines and compared byte for byte — the speedup claim is only
    meaningful if the engines are the same scheduler.  Timing then
    covers the full streaming pipeline (trace generation + dispatch +
    sketched percentiles), best-of-N per engine.
    """
    from repro.sim.dispatch_batch import native_available

    partition = FleetPartition([config_by_name(name) for name in WIDE_CONFIGS])
    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)

    verify_n = min(num_requests, VERIFY_REQUESTS)
    subset = generate_trace_soa(SHAPES, verify_n, MEAN_INTERARRIVAL, seed=7)
    identical = _dispatch_bytes(
        simulator.run(subset, dispatch="heap")
    ) == _dispatch_bytes(simulator.run(subset, dispatch="vectorized"))

    timings = {}
    for engine in ("heap", "vectorized"):
        best = math.inf
        for _ in range(repeats):
            started = time.perf_counter()
            soa = generate_trace_soa(
                SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7
            )
            simulator.run(
                soa, streaming=True, quantile_error=QUANTILE_ERROR,
                dispatch=engine,
            )
            best = min(best, time.perf_counter() - started)
        timings[engine] = best

    return {
        "configs": list(WIDE_CONFIGS),
        "accelerators": len(WIDE_CONFIGS),
        "requests": num_requests,
        "native": native_available(),
        "identical": identical,
        "heap_seconds": timings["heap"],
        "heap_requests_per_sec": num_requests / timings["heap"],
        "vectorized_seconds": timings["vectorized"],
        "vectorized_requests_per_sec": num_requests / timings["vectorized"],
        "speedup_vs_heap": timings["heap"] / timings["vectorized"],
    }


def run_benchmark(
    num_requests: int = DEFAULT_REQUESTS,
    smoke: bool = False,
    repeats: int = 2,
    start_method: str | None = None,
) -> dict:
    partition = AcceleratorPartition([config_by_name(name) for name in CONFIGS])

    # resolve the (tiny, constant) set of service times outside both
    # timed regions so neither side pays model-evaluation cost
    seed_simulator = SeedSimulator(partition)
    simulator = ServingSimulator(partition)
    simulator.prewarm(SHAPES)
    for shape in SHAPES:
        for name in partition.designs:
            try:
                seed_simulator._service(name, shape)
            except ValueError:
                pass

    # best-of-N timing for both modes: the seed loop runs for seconds,
    # so a single sample is at the mercy of scheduler noise
    seed_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        seed_trace = _seed_generate_trace(
            SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7
        )
        seed_report = seed_simulator.run(seed_trace)
        seed_p50 = seed_report.latency_percentile(50)
        seed_p99 = seed_report.latency_percentile(99)
        seed_seconds = min(seed_seconds, time.perf_counter() - started)
        # drop the seed path's millions of objects before the next timed
        # region: leaving them alive would tax its garbage collections
        del seed_trace, seed_report
        gc.collect()

    # ``fast`` pins the table engine — the previous generation's auto
    # pick — so the vectorized speedup is measured against a fixed
    # baseline rather than whatever auto-selection currently resolves to
    fast_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
        report = simulator.run(
            soa, streaming=True, quantile_error=QUANTILE_ERROR, dispatch="table"
        )
        fast_p50, fast_p99 = report.latency_percentiles([50, 99])
        fast_seconds = min(fast_seconds, time.perf_counter() - started)

    vectorized_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        soa = generate_trace_soa(SHAPES, num_requests, MEAN_INTERARRIVAL, seed=7)
        report = simulator.run(
            soa, streaming=True, quantile_error=QUANTILE_ERROR,
            dispatch="vectorized",
        )
        vec_p50, vec_p99 = report.latency_percentiles([50, 99])
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - started)

    entry = {
        "timestamp": time.time(),
        "requests": num_requests,
        "shapes": [str(shape) for shape in SHAPES],
        "configs": list(CONFIGS),
        "mean_interarrival": MEAN_INTERARRIVAL,
        "smoke": smoke,
        "modes": {
            "seed": {
                "seconds": seed_seconds,
                "requests_per_sec": num_requests / seed_seconds,
                "p50": seed_p50,
                "p99": seed_p99,
            },
            "fast": {
                "seconds": fast_seconds,
                "requests_per_sec": num_requests / fast_seconds,
                "p50": fast_p50,
                "p99": fast_p99,
            },
            "vectorized": {
                "seconds": vectorized_seconds,
                "requests_per_sec": num_requests / vectorized_seconds,
                "p50": vec_p50,
                "p99": vec_p99,
            },
        },
        "speedup": seed_seconds / fast_seconds,
        "vectorized_speedup": fast_seconds / vectorized_seconds,
        "quantile_error": QUANTILE_ERROR,
        "floors": {
            "speedup": SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR,
            "vectorized_speedup": (
                SMOKE_VECTORIZED_FLOOR if smoke else VECTORIZED_FLOOR
            ),
        },
    }
    entry.update(verify_contract(partition, min(num_requests, VERIFY_REQUESTS)))
    entry.update(
        verify_fault_contract(partition, min(num_requests, VERIFY_REQUESTS))
    )
    entry.update(
        verify_sharded_contract(partition, min(num_requests, VERIFY_REQUESTS))
    )
    entry["sharded"] = run_sharded_benchmark(
        partition, num_requests, start_method=start_method
    )
    entry["wide"] = run_wide_benchmark(num_requests)
    entry["cache"] = measure_cache_warmup(partition)
    return entry


def measure_cache_warmup(partition: AcceleratorPartition, repeats: int = 3) -> dict:
    """Cold vs warm analytical-model prewarm through the disk snapshot.

    Cold: clear the process cache and prewarm a fresh simulator (every
    estimate recomputed).  Warm: restore the snapshot ``save_disk``
    wrote and prewarm again — every estimate must come from the
    snapshot.  Best-of-N on both sides; the process cache is left warm.
    """
    import shutil
    import tempfile

    from repro.perf import clear_cache, get_cache

    tmpdir = tempfile.mkdtemp(prefix="bench-evalcache-")
    cold_seconds = warm_seconds = math.inf
    warm_hits = 0
    try:
        for _ in range(repeats):
            clear_cache()
            started = time.perf_counter()
            ServingSimulator(partition).prewarm(SHAPES)
            cold_seconds = min(cold_seconds, time.perf_counter() - started)
            get_cache().save_disk(tmpdir)
            clear_cache()
            started = time.perf_counter()
            get_cache().load_disk(tmpdir)
            ServingSimulator(partition).prewarm(SHAPES)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
            warm_hits = get_cache().hits
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return {
        "cold_prewarm_seconds": cold_seconds,
        "warm_prewarm_seconds": warm_seconds,
        "prewarm_speedup": cold_seconds / warm_seconds,
        "warm_hits": warm_hits,
    }


def sharded_gates() -> list[Gate]:
    """The sharded-serving contract as declarative gates."""
    return [
        Gate(metric="sharded_identical", kind="flag",
             label="per-shard reports differ from unsharded runs over the "
                   "same sub-traces"),
        Gate(metric="sharded_counts_exact", kind="flag",
             label="merged fleet counts do not equal the offered trace"),
        Gate(metric="sharded_percentile_errors.*", kind="ceiling",
             value=QUANTILE_ERROR,
             label="merged percentiles exceed the sketch bound across "
                   "shard counts"),
        Gate(metric="sharded.matches_inline", kind="flag",
             label="pool fleet report differs from the inline reference"),
        Gate(metric="sharded.speedup_vs_vectorized", kind="floor",
             value=SHARDED_FLOOR, when="sharded.gated",
             label=f"sharded speedup over vectorized is below the "
                   f"{SHARDED_FLOOR}x floor"),
    ]


def wide_gates(smoke: bool) -> list[Gate]:
    """The wide-fleet contract as declarative gates."""
    wide_floor = SMOKE_WIDE_FLOOR if smoke else WIDE_FLOOR
    return [
        Gate(metric="wide.identical", kind="flag",
             label="vectorized and heap dispatch decisions differ on the "
                   "wide fleet"),
        Gate(metric="wide.speedup_vs_heap", kind="floor", value=wide_floor,
             when="wide.native",
             label=f"wide-fleet vectorized speedup over heap is below the "
                   f"{wide_floor}x floor (native kernel)"),
    ]


def serving_gates(smoke: bool) -> list[Gate]:
    """The full serving contract (speedups, identity, accuracy, cache)."""
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    vec_floor = SMOKE_VECTORIZED_FLOOR if smoke else VECTORIZED_FLOOR
    bound = 2 * QUANTILE_ERROR
    gates = [
        Gate(metric="trace_identical", kind="flag",
             label="SoA trace generation is not bit-identical to scalar"),
        Gate(metric="dispatch_identical", kind="flag",
             label="scan, table, heap, and vectorized dispatch decisions "
                   "differ"),
        Gate(metric="streaming_identical", kind="flag",
             label="streaming summaries differ between table and vectorized "
                   "engines"),
        Gate(metric="fault_engines_identical", kind="flag",
             label="scan, table, and heap disagree under a fault schedule"),
        Gate(metric="fault_deterministic", kind="flag",
             label="fault runs are not deterministic"),
        Gate(metric="fault_accounting_exact", kind="flag",
             label="fault accounting does not balance "
                   "(completed + shed != offered)"),
        Gate(metric="fault_streaming_identical", kind="flag",
             label="streaming fault summaries differ between table and heap"),
        Gate(metric="fault_streaming_consistent", kind="flag",
             label="streaming fault report disagrees with the exact report"),
        Gate(metric="p50_relative_error", kind="ceiling", value=bound,
             label=f"streaming p50 is off by more than the {bound} bound"),
        Gate(metric="p99_relative_error", kind="ceiling", value=bound,
             label=f"streaming p99 is off by more than the {bound} bound"),
        Gate(metric="speedup", kind="floor", value=floor,
             label=f"serving speedup is below the {floor}x floor"),
        Gate(metric="vectorized_speedup", kind="floor", value=vec_floor,
             label=f"vectorized speedup over fast is below the "
                   f"{vec_floor}x floor"),
        Gate(metric="cache.warm_hits", kind="floor", value=1.0,
             label="warm prewarm served no estimates from the snapshot"),
    ]
    if not smoke:
        gates.append(
            Gate(metric="cache.prewarm_speedup", kind="floor",
                 value=PREWARM_SPEEDUP_FLOOR,
                 label=f"warm prewarm speedup is below the "
                       f"{PREWARM_SPEEDUP_FLOOR}x floor")
        )
    return gates + sharded_gates() + wide_gates(smoke)


def check_sharded(entry: dict, baseline: dict | None = None) -> list[str]:
    """The sharded-serving contract; empty list means acceptable."""
    return failure_messages(check_entry(entry, sharded_gates(), baseline))


def check_wide(entry: dict, baseline: dict | None = None) -> list[str]:
    """The wide-fleet contract; empty list means acceptable."""
    return failure_messages(
        check_entry(entry, wide_gates(entry["smoke"]), baseline)
    )


def check(entry: dict, baseline: dict | None = None) -> list[str]:
    """The serving engine's contract; empty list means acceptable."""
    return failure_messages(
        check_entry(entry, serving_gates(entry["smoke"]), baseline)
    )


def test_serving_throughput_smoke():
    """Tier-2 smoke: small trace, full contract still holds."""
    entry = run_benchmark(num_requests=50_000, smoke=True)
    assert check(entry) == []


def _print_sharded(entry: dict) -> None:
    sharded = entry["sharded"]
    gate = "armed" if sharded["gated"] else "disarmed"
    print(f"{'sharded':>10}: {sharded['seconds']:8.3f} s  "
          f"{sharded['requests_per_sec']:12.1f} req/s  "
          f"({sharded['shards']} shards via {sharded['start_method']})")
    print(f"sharded speedup:      {sharded['speedup_vs_vectorized']:.2f}x over "
          f"vectorized (gate {gate}, {sharded['cpu_count']} cpus)")
    print(f"sharded identical:    {entry['sharded_identical']}  "
          f"counts exact: {entry['sharded_counts_exact']}  "
          f"pool==inline: {sharded['matches_inline']}")
    worst = max(entry["sharded_percentile_errors"].values())
    print(f"sharded p50/p99 err:  {worst:.5f} worst across shard counts "
          f"{list(entry['sharded_percentile_errors'])} "
          f"(bound {entry['quantile_error']})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--output", "-o", default="BENCH_serving.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small trace for CI (50k requests, reduced speedup floor)",
    )
    parser.add_argument(
        "--start-method", choices=["fork", "spawn", "forkserver", "inline"],
        default=None,
        help="shard pool start method (default: fork where available)",
    )
    parser.add_argument(
        "--sharded-only", action="store_true",
        help="run only the sharded contract + benchmark and skip the "
        "trajectory append (CI uses this for the alternate start method)",
    )
    parser.add_argument(
        "--fleet-report-out", default=None,
        help="write the merged fleet report JSON to this path",
    )
    args = parser.parse_args(argv)
    num_requests = 50_000 if args.smoke else args.requests

    if args.sharded_only:
        partition = AcceleratorPartition(
            [config_by_name(name) for name in CONFIGS]
        )
        entry = {
            "smoke": args.smoke,
            "quantile_error": QUANTILE_ERROR,
        }
        entry.update(
            verify_sharded_contract(partition, min(num_requests, VERIFY_REQUESTS))
        )
        entry["sharded"] = run_sharded_benchmark(
            partition, num_requests, start_method=args.start_method
        )
        _print_sharded(entry)
        if args.fleet_report_out:
            Path(args.fleet_report_out).write_text(
                json.dumps(entry["sharded"]["fleet"], indent=2) + "\n"
            )
            print(f"fleet report -> {args.fleet_report_out}")
        failures = check_sharded(entry)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    entry = run_benchmark(
        num_requests=num_requests, smoke=args.smoke,
        start_method=args.start_method,
    )
    append_trajectory(entry, Path(args.output))
    if args.fleet_report_out:
        Path(args.fleet_report_out).write_text(
            json.dumps(entry["sharded"]["fleet"], indent=2) + "\n"
        )

    print(f"requests {entry['requests']}  partition {'+'.join(entry['configs'])}  "
          f"shapes {len(entry['shapes'])}")
    for name, mode in entry["modes"].items():
        print(f"{name:>10}: {mode['seconds']:8.3f} s  "
              f"{mode['requests_per_sec']:12.1f} req/s  "
              f"p50 {mode['p50'] * 1e3:.3f} ms  p99 {mode['p99'] * 1e3:.3f} ms")
    print(f"speedup:              {entry['speedup']:.2f}x")
    print(f"vectorized speedup:   {entry['vectorized_speedup']:.2f}x over fast")
    _print_sharded(entry)
    wide = entry["wide"]
    kernel = "native" if wide["native"] else "numpy fallback"
    print(f"{'wide':>10}: {wide['vectorized_seconds']:8.3f} s  "
          f"{wide['vectorized_requests_per_sec']:12.1f} req/s  "
          f"({wide['accelerators']} accelerators via {kernel})")
    print(f"wide speedup:         {wide['speedup_vs_heap']:.2f}x over heap  "
          f"identical: {wide['identical']}")
    cache = entry["cache"]
    print(f"prewarm cache:        cold {cache['cold_prewarm_seconds'] * 1e3:.2f} ms"
          f"  warm {cache['warm_prewarm_seconds'] * 1e3:.2f} ms"
          f"  ({cache['prewarm_speedup']:.1f}x, {cache['warm_hits']} hits)")
    print(f"trace identical:      {entry['trace_identical']}")
    print(f"dispatch identical:   {entry['dispatch_identical']}")
    print(f"streaming identical:  {entry['streaming_identical']}")
    print(f"fault contract:       engines={entry['fault_engines_identical']} "
          f"deterministic={entry['fault_deterministic']} "
          f"accounting={entry['fault_accounting_exact']} "
          f"streaming={entry['fault_streaming_identical']}")
    print(f"streaming p50/p99 err: {entry['p50_relative_error']:.5f} / "
          f"{entry['p99_relative_error']:.5f} (bound {2 * entry['quantile_error']})")
    print(f"trajectory -> {args.output}")

    failures = check(entry)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
